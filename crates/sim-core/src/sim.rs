//! The [`Simulation`] facade: model + agents + stop condition + engine +
//! probe, runnable as a library call.
//!
//! Before this facade, driving a simulation meant hand-rolling the
//! [`drive`](crate::drive) closure: tick every client, evaluate the stop
//! condition, aggregate sleep horizons, absorb skipped cycles. The
//! builder packages that loop once, for any [`BusModel`] and any set of
//! [`SimAgent`]s:
//!
//! ```
//! use sim_core::agent::{Idle, SimAgent};
//! use sim_core::sim::{Engine, Simulation, StopWhen};
//! use sim_core::{BusModel, Control, CoreId, Cycle};
//! # use sim_core::trace::GrantTrace;
//! #
//! # #[derive(Debug)]
//! # struct ToyBus { trace: GrantTrace, queue: u64, busy_until: Option<Cycle> }
//! # impl ToyBus { fn new() -> Self { ToyBus { trace: GrantTrace::counting(1), queue: 0, busy_until: None } } }
//! # impl BusModel for ToyBus {
//! #     type Request = u32;
//! #     type Completion = ();
//! #     type Error = ();
//! #     fn begin_cycle(&mut self, now: Cycle) -> Option<()> {
//! #         if self.busy_until == Some(now) { self.busy_until = None; return Some(()); }
//! #         None
//! #     }
//! #     fn post(&mut self, dur: u32) -> Result<(), ()> { self.queue += dur as u64; Ok(()) }
//! #     fn end_cycle(&mut self, now: Cycle) -> Option<CoreId> {
//! #         if self.busy_until.is_none() && self.queue > 0 {
//! #             let d = self.queue.min(4); self.queue -= d;
//! #             self.busy_until = Some(now + d);
//! #             self.trace.record(now, CoreId::from_index(0), d as u32);
//! #             return Some(CoreId::from_index(0));
//! #         }
//! #         None
//! #     }
//! #     fn owner(&self) -> Option<CoreId> { self.busy_until.map(|_| CoreId::from_index(0)) }
//! #     fn trace(&self) -> &GrantTrace { &self.trace }
//! # }
//!
//! /// An agent that posts one 4-cycle request every 10 cycles, 5 times.
//! struct Pulser { left: u32, next: Cycle, done_at: Option<Cycle> }
//!
//! impl SimAgent<ToyBus> for Pulser {
//!     fn tick(&mut self, now: Cycle, _done: Option<&()>, bus: &mut ToyBus) -> Control {
//!         if self.left > 0 && now >= self.next {
//!             bus.post(4).unwrap();
//!             self.left -= 1;
//!             self.next += 10;
//!         }
//!         if self.left == 0 && self.done_at.is_none() {
//!             self.done_at = Some(now);
//!         }
//!         Control::Sleep(self.next)
//!     }
//!     fn wake_at(&self) -> Option<Cycle> { Some(self.next) }
//!     fn is_done(&self) -> bool { self.left == 0 }
//!     fn done_at(&self) -> Option<Cycle> { self.done_at }
//!     fn reset(&mut self, _rng: &mut sim_core::rng::SimRng) {
//!         *self = Pulser { left: 5, next: 0, done_at: None };
//!     }
//! }
//!
//! let mut sim = Simulation::builder()
//!     .model(ToyBus::new())
//!     .agent(Pulser { left: 5, next: 0, done_at: None })
//!     .agent(Idle::new())
//!     .stop(StopWhen::AllAgentsDone)
//!     .engine(Engine::Events)
//!     .max_cycles(1_000)
//!     .build();
//! let outcome = sim.run();
//! assert!(outcome.stopped, "all five pulses posted");
//! assert_eq!(sim.model().trace().total_slots(), 5);
//! ```
//!
//! The loop reproduces [`drive`](crate::drive) /
//! [`drive_events`](crate::drive_events) **bit for bit** (same cycles
//! executed, same skip decisions, same stop cycle) while additionally
//! feeding a [`Probe`]; the workspace's identity tests pin this through
//! the platform layer.

use crate::agent::SimAgent;
use crate::engine::{BusModel, Control, DriveOutcome};
use crate::probe::{ModelEvent, NoProbe, Probe};
use crate::Cycle;

/// A boxed agent driving model `M` (the common currency of
/// [`SimulationBuilder::agent`]).
pub type BoxedAgent<M> = Box<dyn SimAgent<M, <M as BusModel>::Completion>>;

/// When a [`Simulation`] run stops (besides the `max_cycles` safety
/// limit, which always applies).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopWhen {
    /// Stop when the agent at this index reports
    /// [`is_done`](SimAgent::is_done) (the platform's "TuA done", with
    /// index 0).
    AgentDone(usize),
    /// Stop when every agent reports done.
    AllAgentsDone,
    /// Run exactly this many cycles (for share/fairness measurements).
    Horizon(Cycle),
}

/// Which cycle loop executes the run. [`Engine::Events`] and
/// [`Engine::Naive`] produce bit-identical results; see
/// [`drive`](crate::drive) and [`drive_events`](crate::drive_events).
/// [`Engine::Fluid`] selects the continuous-time approximation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// The event-horizon fast path: skips provably uneventful cycle
    /// ranges. The default.
    #[default]
    Events,
    /// The per-cycle reference loop: visits every cycle.
    Naive,
    /// The continuous-time fluid backend: pair with a model built for it
    /// (e.g. [`fluid::FluidBus`](crate::fluid::FluidBus), whose posted
    /// requests drain concurrently at weight-proportional rates). The
    /// loop itself runs with event-horizon skipping — for a discrete
    /// model this engine behaves exactly like [`Engine::Events`]; the
    /// approximation lives in the model, and higher layers (the
    /// platform's `DriveMode::Fluid`) substitute their fluid executor
    /// when this engine is requested.
    Fluid,
}

/// A fully assembled simulation: one model, its agents, a stop
/// condition, an engine and a probe. Built by [`Simulation::builder`];
/// see the [module documentation](self) for an end-to-end example.
pub struct Simulation<M: BusModel, P: Probe<M::Completion> = NoProbe> {
    model: M,
    agents: Vec<BoxedAgent<M>>,
    stop: StopWhen,
    engine: Engine,
    max_cycles: Cycle,
    probe: P,
    outcome: Option<DriveOutcome>,
}

impl<M: BusModel> Simulation<M, NoProbe> {
    /// Starts assembling a simulation. The model type is inferred from
    /// the [`model`](SimulationBuilder::model) call.
    pub fn builder() -> SimulationBuilder<M, NoProbe> {
        SimulationBuilder {
            model: None,
            agents: Vec::new(),
            stop: StopWhen::AllAgentsDone,
            engine: Engine::default(),
            max_cycles: Cycle::MAX,
            probe: NoProbe,
        }
    }
}

impl<M: BusModel, P: Probe<M::Completion>> Simulation<M, P> {
    /// Drives the simulation to its stop condition (or the `max_cycles`
    /// safety limit) and returns the outcome.
    ///
    /// The loop is bit-identical to [`drive`](crate::drive) (naive
    /// engine) / [`drive_events`](crate::drive_events) (events engine)
    /// wrapped around the canonical client-ticking closure: completions
    /// are handed to every agent, skipped stretches are absorbed, agents'
    /// sleep horizons bound the fast path's jumps.
    ///
    /// Running consumes the workload: call it once per assembled run
    /// (reset the model and agents before reusing the same `Simulation`).
    pub fn run(&mut self) -> DriveOutcome {
        let events = self.engine != Engine::Naive;
        let model = &mut self.model;
        let agents = &mut self.agents;
        let probe = &mut self.probe;
        let stop_when = self.stop;
        let max_cycles = self.max_cycles;

        // Inert agents (permanently-done no-ops, e.g. idle cores) are
        // dropped from the per-cycle loop up front: their tick/absorb
        // are no-ops and their sleep horizon is unbounded by contract.
        let active: Vec<usize> = (0..agents.len())
            .filter(|&i| !agents[i].is_inert())
            .collect();
        let mut now: Cycle = 0;
        let mut prev: Option<Cycle> = None;
        let mut stopped = false;
        while now < max_cycles {
            let completed = model.begin_cycle(now);
            if P::ACTIVE {
                if let Some(c) = &completed {
                    probe.on_completion(now, c);
                }
            }
            // Replay per-cycle accounting for the cycles the fast path
            // skipped since the last executed cycle.
            if let Some(prev) = prev {
                let skipped = now - prev - 1;
                if skipped > 0 {
                    for &i in &active {
                        agents[i].absorb_skipped(skipped);
                    }
                }
            }
            prev = Some(now);
            // The tick verdicts carry each agent's sleep horizon (the
            // trait contract: the verdict mirrors `wake_at`, which
            // depends only on the agent's own state), so one pass both
            // ticks and aggregates — no second virtual-dispatch sweep.
            let mut agent_stop = false;
            let mut until = Cycle::MAX;
            let mut can_sleep = true;
            for &i in &active {
                match agents[i].tick(now, completed.as_ref(), model) {
                    Control::Stop => agent_stop = true,
                    Control::Continue => can_sleep = false,
                    Control::Sleep(t) => until = until.min(t),
                }
            }
            let granted = model.end_cycle(now);
            if P::ACTIVE {
                if let Some(core) = granted {
                    probe.on_grant(now, core);
                }
                model.drain_events(&mut |event| forward_event(probe, event));
            }
            let stop = agent_stop
                || match stop_when {
                    StopWhen::AgentDone(i) => agents[i].is_done(),
                    // Inert agents are done by contract: checking the
                    // active set is equivalent.
                    StopWhen::AllAgentsDone => active.iter().all(|&i| agents[i].is_done()),
                    StopWhen::Horizon(h) => now + 1 >= h,
                };
            if stop {
                now += 1;
                stopped = true;
                break;
            }
            if events {
                if let StopWhen::Horizon(h) = stop_when {
                    // The stop fires from the tick at cycle h - 1; never
                    // skip it.
                    until = until.min(h - 1);
                }
                if can_sleep && until > now + 1 {
                    if let Some(event) = model.next_event(now) {
                        let jump = event.min(until).min(max_cycles);
                        if jump > now + 1 {
                            model.advance(now, jump);
                            now = jump;
                            continue;
                        }
                    }
                }
            }
            now += 1;
        }
        // A run that hits max_cycles mid-skip ends without another tick;
        // absorb the tail so agent statistics stay bit-identical to the
        // per-cycle loop.
        if let Some(prev) = prev {
            let tail = (now - 1).saturating_sub(prev);
            if tail > 0 {
                for &i in &active {
                    agents[i].absorb_skipped(tail);
                }
            }
        }
        if P::ACTIVE {
            // A run truncated mid-skip leaves events buffered by the
            // final `advance` (e.g. coalesced credit flips); drain them
            // before closing the stream.
            model.drain_events(&mut |event| forward_event(probe, event));
            probe.on_finish(now);
        }
        let outcome = DriveOutcome {
            cycles: now,
            stopped,
        };
        self.outcome = Some(outcome);
        outcome
    }

    /// The model, for post-run extraction (traces, statistics).
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Mutable access to the model (e.g. to reset it between runs).
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// The agents, in the order they were added.
    pub fn agents(&self) -> &[BoxedAgent<M>] {
        &self.agents
    }

    /// Mutable access to the agents (e.g. to reset them between runs).
    pub fn agents_mut(&mut self) -> &mut [BoxedAgent<M>] {
        &mut self.agents
    }

    /// The agent at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn agent(&self, index: usize) -> &dyn SimAgent<M, M::Completion> {
        &*self.agents[index]
    }

    /// The probe, for post-run extraction of its accumulated data.
    pub fn probe(&self) -> &P {
        &self.probe
    }

    /// The outcome of the last [`run`](Simulation::run), if any.
    pub fn outcome(&self) -> Option<DriveOutcome> {
        self.outcome
    }

    /// Decomposes the simulation into its parts (model, agents, probe).
    pub fn into_parts(self) -> (M, Vec<BoxedAgent<M>>, P) {
        (self.model, self.agents, self.probe)
    }
}

/// Routes one drained [`ModelEvent`] to its probe callback (shared by
/// the per-cycle and end-of-run drains so a future event variant cannot
/// be wired into one and forgotten in the other).
fn forward_event<C, P: Probe<C>>(probe: &mut P, event: ModelEvent) {
    match event {
        ModelEvent::CreditFlip { at, core, eligible } => probe.on_credit_flip(at, core, eligible),
    }
}

/// Assembles a [`Simulation`]; created by [`Simulation::builder`].
pub struct SimulationBuilder<M: BusModel, P: Probe<M::Completion> = NoProbe> {
    model: Option<M>,
    agents: Vec<BoxedAgent<M>>,
    stop: StopWhen,
    engine: Engine,
    max_cycles: Cycle,
    probe: P,
}

impl<M: BusModel, P: Probe<M::Completion>> SimulationBuilder<M, P> {
    /// Sets the interconnect model (a flat bus, a split bus, a fabric —
    /// anything implementing [`BusModel`]). Required.
    pub fn model(mut self, model: M) -> Self {
        self.model = Some(model);
        self
    }

    /// Adds one agent. Agents are ticked in insertion order each cycle;
    /// index 0 is the platform's "task under analysis" slot.
    pub fn agent(mut self, agent: impl SimAgent<M, M::Completion> + 'static) -> Self {
        self.agents.push(Box::new(agent));
        self
    }

    /// Adds one already-boxed agent (the currency of agent registries).
    pub fn agent_boxed(mut self, agent: BoxedAgent<M>) -> Self {
        self.agents.push(agent);
        self
    }

    /// Adds a batch of boxed agents, in order.
    pub fn agents(mut self, agents: impl IntoIterator<Item = BoxedAgent<M>>) -> Self {
        self.agents.extend(agents);
        self
    }

    /// Sets the stop condition (default: [`StopWhen::AllAgentsDone`]).
    pub fn stop(mut self, stop: StopWhen) -> Self {
        self.stop = stop;
        self
    }

    /// Selects the cycle loop (default: [`Engine::Events`]).
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Sets the hard safety limit on simulated cycles (default:
    /// `Cycle::MAX`, i.e. effectively unlimited — set one whenever the
    /// stop condition could fail to fire).
    pub fn max_cycles(mut self, max_cycles: Cycle) -> Self {
        self.max_cycles = max_cycles;
        self
    }

    /// Attaches a streaming observer, replacing the zero-cost
    /// [`NoProbe`] default.
    pub fn observe<Q: Probe<M::Completion>>(self, probe: Q) -> SimulationBuilder<M, Q> {
        SimulationBuilder {
            model: self.model,
            agents: self.agents,
            stop: self.stop,
            engine: self.engine,
            max_cycles: self.max_cycles,
            probe,
        }
    }

    /// Finishes assembly.
    ///
    /// # Panics
    ///
    /// Panics if no model was set.
    pub fn build(self) -> Simulation<M, P> {
        Simulation {
            model: self.model.expect("Simulation::builder needs a model"),
            agents: self.agents,
            stop: self.stop,
            engine: self.engine,
            max_cycles: self.max_cycles,
            probe: self.probe,
            outcome: None,
        }
    }

    /// Convenience: [`build`](SimulationBuilder::build) then
    /// [`run`](Simulation::run), returning the finished simulation for
    /// result extraction (its [`outcome`](Simulation::outcome) is set).
    pub fn run(self) -> Simulation<M, P> {
        let mut sim = self.build();
        sim.run();
        sim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::Idle;
    use crate::rng::SimRng;
    use crate::trace::GrantTrace;
    use crate::CoreId;

    /// The OneShot toy model from the engine tests, duplicated here to
    /// keep the modules independent.
    #[derive(Debug)]
    struct OneShot {
        trace: GrantTrace,
        pending: Option<u32>,
        busy_until: Option<Cycle>,
        skipped: u64,
    }

    impl OneShot {
        fn new() -> Self {
            OneShot {
                trace: GrantTrace::counting(1),
                pending: None,
                busy_until: None,
                skipped: 0,
            }
        }
    }

    impl BusModel for OneShot {
        type Request = u32;
        type Completion = Cycle;
        type Error = &'static str;

        fn begin_cycle(&mut self, now: Cycle) -> Option<Cycle> {
            if self.busy_until == Some(now) {
                self.busy_until = None;
                return Some(now);
            }
            None
        }

        fn post(&mut self, req: u32) -> Result<(), &'static str> {
            if self.pending.is_some() {
                return Err("already pending");
            }
            self.pending = Some(req);
            Ok(())
        }

        fn end_cycle(&mut self, now: Cycle) -> Option<CoreId> {
            if self.busy_until.is_none() {
                if let Some(dur) = self.pending.take() {
                    self.busy_until = Some(now + dur as Cycle);
                    self.trace.record(now, CoreId::from_index(0), dur);
                    return Some(CoreId::from_index(0));
                }
            }
            None
        }

        fn owner(&self) -> Option<CoreId> {
            self.busy_until.map(|_| CoreId::from_index(0))
        }

        fn trace(&self) -> &GrantTrace {
            &self.trace
        }

        fn next_event(&mut self, now: Cycle) -> Option<Cycle> {
            match (self.busy_until, self.pending) {
                (Some(ends_at), _) => Some(ends_at),
                (None, Some(_)) => Some(now + 1),
                (None, None) => Some(Cycle::MAX),
            }
        }

        fn advance(&mut self, from: Cycle, to: Cycle) {
            self.skipped += to - from - 1;
        }
    }

    /// Posts `n` 7-cycle requests, one per 20-cycle period.
    struct Periodic {
        left: u32,
        next: Cycle,
        waiting: bool,
        done_at: Option<Cycle>,
        skipped_seen: u64,
    }

    impl Periodic {
        fn new(n: u32) -> Self {
            Periodic {
                left: n,
                next: 0,
                waiting: false,
                done_at: None,
                skipped_seen: 0,
            }
        }
    }

    impl SimAgent<OneShot, Cycle> for Periodic {
        fn tick(&mut self, now: Cycle, completed: Option<&Cycle>, bus: &mut OneShot) -> Control {
            if completed.is_some() && self.waiting {
                self.waiting = false;
                if self.left == 0 && self.done_at.is_none() {
                    self.done_at = Some(now);
                }
            }
            if self.left > 0 && now >= self.next && !self.waiting {
                bus.post(7).unwrap();
                self.left -= 1;
                self.next = (now / 20 + 1) * 20;
                self.waiting = true;
            }
            Control::Sleep(self.wake_at().unwrap())
        }

        fn wake_at(&self) -> Option<Cycle> {
            if self.waiting || self.left == 0 {
                Some(Cycle::MAX)
            } else {
                Some(self.next)
            }
        }

        fn is_done(&self) -> bool {
            self.left == 0 && !self.waiting
        }

        fn done_at(&self) -> Option<Cycle> {
            self.done_at
        }

        fn absorb_skipped(&mut self, skipped: u64) {
            self.skipped_seen += skipped;
        }

        fn reset(&mut self, _rng: &mut SimRng) {
            *self = Periodic::new(5);
        }
    }

    fn run_with(engine: Engine) -> (Simulation<OneShot>, DriveOutcome) {
        let mut sim = Simulation::builder()
            .model(OneShot::new())
            .agent(Periodic::new(5))
            .agent(Idle::new())
            .stop(StopWhen::AllAgentsDone)
            .engine(engine)
            .max_cycles(10_000)
            .build();
        let outcome = sim.run();
        (sim, outcome)
    }

    #[test]
    fn engines_agree_bit_for_bit() {
        let (naive_sim, naive) = run_with(Engine::Naive);
        let (fast_sim, fast) = run_with(Engine::Events);
        assert_eq!(naive, fast);
        assert_eq!(
            naive_sim.model().trace().total_slots(),
            fast_sim.model().trace().total_slots()
        );
        assert_eq!(naive_sim.agent(0).done_at(), fast_sim.agent(0).done_at());
        assert!(fast_sim.model().skipped > 0, "fast path must skip");
        assert_eq!(naive_sim.model().skipped, 0, "naive path never skips");
        // Skipped-cycle accounting reaches the agents.
        assert!(fast_sim.outcome().is_some());
    }

    #[test]
    fn horizon_stop_is_exact() {
        let mut sim = Simulation::builder()
            .model(OneShot::new())
            .agent(Periodic::new(1_000))
            .stop(StopWhen::Horizon(137))
            .max_cycles(10_000)
            .build();
        let outcome = sim.run();
        assert!(outcome.stopped);
        assert_eq!(outcome.cycles, 137);
    }

    #[test]
    fn agent_done_stop_uses_the_indexed_agent() {
        let mut sim = Simulation::builder()
            .model(OneShot::new())
            .agent(Periodic::new(2))
            .stop(StopWhen::AgentDone(0))
            .max_cycles(10_000)
            .build();
        let outcome = sim.run();
        assert!(outcome.stopped);
        assert_eq!(sim.agent(0).done_at(), Some(27), "second grant at 20+7");
    }

    #[test]
    fn max_cycles_bounds_the_run() {
        let mut sim = Simulation::builder()
            .model(OneShot::new())
            .agent(Periodic::new(u32::MAX))
            .max_cycles(100)
            .build();
        let outcome = sim.run();
        assert!(!outcome.stopped);
        assert_eq!(outcome.cycles, 100);
    }

    #[derive(Default)]
    struct CountingProbe {
        grants: u64,
        completions: u64,
        finish: Option<Cycle>,
    }

    impl Probe<Cycle> for CountingProbe {
        fn on_grant(&mut self, _now: Cycle, _core: CoreId) {
            self.grants += 1;
        }
        fn on_completion(&mut self, _now: Cycle, _c: &Cycle) {
            self.completions += 1;
        }
        fn on_finish(&mut self, total: Cycle) {
            self.finish = Some(total);
        }
    }

    #[test]
    fn probe_sees_every_grant_and_completion() {
        let sim = Simulation::builder()
            .model(OneShot::new())
            .agent(Periodic::new(5))
            .stop(StopWhen::AllAgentsDone)
            .max_cycles(10_000)
            .observe(CountingProbe::default())
            .run();
        let probe = sim.probe();
        assert_eq!(probe.grants, 5);
        assert_eq!(probe.completions, 5);
        assert_eq!(probe.finish, sim.outcome().map(|o| o.cycles));
        assert_eq!(sim.model().trace().total_slots(), 5);
    }

    #[test]
    #[should_panic(expected = "needs a model")]
    fn building_without_a_model_panics() {
        let _ = Simulation::<OneShot>::builder().build();
    }
}
