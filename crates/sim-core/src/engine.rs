//! The unified cycle-driving engine: one [`BusModel`] trait over every bus
//! variant, and one [`drive`] loop shared by the platform, the benchmark
//! harness and the examples.
//!
//! # Why
//!
//! The repository models two interconnect substrates — a non-split bus and
//! a split-transaction bus — and historically each exposed its own cycle
//! protocol (`tick(now)` versus `begin_cycle`/`end_cycle`), so every
//! harness hand-rolled its own drive loop. `BusModel` fixes the protocol
//! once:
//!
//! 1. [`BusModel::begin_cycle`]`(t)` — a transaction ending at `t`
//!    completes and is reported;
//! 2. clients post requests for cycle `t` via [`BusModel::post`];
//! 3. [`BusModel::end_cycle`]`(t)` — arbitration runs if the bus is free
//!    and per-cycle filter state (credit counters) advances.
//!
//! [`BusModel::tick`] bundles the phases for clients that post between
//! cycles, and [`drive`] owns the `while` loop, the stop condition and the
//! cycle counter, so a policy × filter × bus-variant scenario is expressed
//! as *one closure* that posts traffic.
//!
//! # Example
//!
//! ```
//! use sim_core::engine::{drive, BusModel, Control};
//! use sim_core::trace::GrantTrace;
//! use sim_core::{CoreId, Cycle};
//!
//! /// A one-core toy bus: every posted unit-length request is granted on
//! /// the next free cycle.
//! #[derive(Debug)]
//! struct ToyBus {
//!     trace: GrantTrace,
//!     queue: u64,
//!     busy: bool,
//! }
//!
//! impl ToyBus {
//!     fn new() -> Self {
//!         ToyBus { trace: GrantTrace::counting(1), queue: 0, busy: false }
//!     }
//! }
//!
//! impl BusModel for ToyBus {
//!     type Request = ();
//!     type Completion = ();
//!     type Error = ();
//!
//!     fn begin_cycle(&mut self, _now: Cycle) -> Option<()> {
//!         self.busy.then(|| self.busy = false)
//!     }
//!     fn post(&mut self, _req: ()) -> Result<(), ()> {
//!         self.queue += 1;
//!         Ok(())
//!     }
//!     fn end_cycle(&mut self, now: Cycle) -> Option<CoreId> {
//!         if !self.busy && self.queue > 0 {
//!             self.queue -= 1;
//!             self.busy = true;
//!             self.trace.record(now, CoreId::from_index(0), 1);
//!             return Some(CoreId::from_index(0));
//!         }
//!         None
//!     }
//!     fn owner(&self) -> Option<CoreId> {
//!         self.busy.then(|| CoreId::from_index(0))
//!     }
//!     fn trace(&self) -> &GrantTrace {
//!         &self.trace
//!     }
//! }
//!
//! let mut bus = ToyBus::new();
//! let outcome = drive(&mut bus, 100, |bus, now, _completed| {
//!     if now % 2 == 0 {
//!         bus.post(()).unwrap();
//!     }
//!     Control::Continue
//! });
//! assert_eq!(outcome.cycles, 100);
//! assert!(!outcome.stopped);
//! assert_eq!(bus.trace().total_slots(), 50);
//! ```

use crate::trace::GrantTrace;
use crate::{CoreId, Cycle};

/// Combined result of one [`BusModel::tick`].
///
/// Iterating a `TickOutcome` yields the completion, if any, which keeps the
/// `for completed in bus.tick(now) { .. }` idiom of the split bus working
/// against the unified API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TickOutcome<C> {
    /// Transaction that completed at this cycle, if any.
    pub completed: Option<C>,
    /// Core granted the bus at this cycle, if any.
    pub granted: Option<CoreId>,
}

impl<C> Default for TickOutcome<C> {
    fn default() -> Self {
        TickOutcome {
            completed: None,
            granted: None,
        }
    }
}

impl<C> IntoIterator for TickOutcome<C> {
    type Item = C;
    type IntoIter = std::option::IntoIter<C>;

    fn into_iter(self) -> Self::IntoIter {
        self.completed.into_iter()
    }
}

/// The cycle protocol shared by every bus variant.
///
/// Implementations advance in two phases per cycle so that a core whose
/// transaction completes at cycle `t` can post its next request *within*
/// cycle `t` and be re-arbitrated immediately (back-to-back transactions,
/// as on hardware where the request lines are already raised when a
/// transfer ends). See the [module documentation](self) for the full
/// protocol and an end-to-end example.
pub trait BusModel {
    /// What clients post (a plain request, or `(core, request)` for buses
    /// that address requests per core).
    type Request;
    /// The completion report of phase 1.
    type Completion;
    /// Rejection returned by [`BusModel::post`].
    type Error: std::fmt::Debug;

    /// Phase 1 of cycle `now`: reports a transaction ending at `now`.
    fn begin_cycle(&mut self, now: Cycle) -> Option<Self::Completion>;

    /// Phase 2 of cycle `now`: posts a request.
    ///
    /// # Errors
    ///
    /// Implementations reject malformed or duplicate requests.
    fn post(&mut self, req: Self::Request) -> Result<(), Self::Error>;

    /// Phase 3 of cycle `now`: arbitration (if the bus is free) and filter
    /// bookkeeping. Returns the freshly granted core, if any.
    fn end_cycle(&mut self, now: Cycle) -> Option<CoreId>;

    /// The core currently holding the bus, if any.
    fn owner(&self) -> Option<CoreId>;

    /// The grant trace accumulated so far.
    fn trace(&self) -> &GrantTrace;

    /// Convenience single-phase tick: [`begin_cycle`](BusModel::begin_cycle)
    /// immediately followed by [`end_cycle`](BusModel::end_cycle); any posts
    /// must happen between ticks.
    fn tick(&mut self, now: Cycle) -> TickOutcome<Self::Completion> {
        let completed = self.begin_cycle(now);
        let granted = self.end_cycle(now);
        TickOutcome { completed, granted }
    }

    /// The bus's **event horizon**: called after [`end_cycle`](
    /// BusModel::end_cycle)`(now)`, returns the earliest future cycle at
    /// which anything observable can happen on the bus side — a completion
    /// is reported, a grant becomes possible, or internal state stops
    /// evolving in the closed form applied by [`advance`](BusModel::advance)
    /// — **assuming no client interaction** (no posts or withdrawals) in
    /// between.
    ///
    /// Returning `Some(e)` is a guarantee: for every cycle `t` in
    /// `(now, e)`, `begin_cycle(t)` would report nothing and `end_cycle(t)`
    /// would grant nothing, so [`drive_events`] may replace those per-cycle
    /// calls with one `advance` and jump straight to `e` (or to any earlier
    /// cycle — resuming early is always safe). `Some(Cycle::MAX)` means "no
    /// bus-side event at all until a client acts".
    ///
    /// The default returns `None` — "cannot predict" — which disables
    /// skipping entirely, so implementations that never override this (or
    /// that compose unpredictable filters/policies) keep the exact
    /// per-cycle behaviour.
    fn next_event(&mut self, now: Cycle) -> Option<Cycle> {
        let _ = now;
        None
    }

    /// Bulk-advances bus state over the uneventful cycle range
    /// `from + 1 ..= to - 1` (exclusive of both the already-executed cycle
    /// `from` and the about-to-be-executed cycle `to`), exactly as if each
    /// had been stepped through `begin_cycle`/`end_cycle` with no client
    /// interaction: cycle counters accumulate, credit/filter state evolves,
    /// and the internal cycle cursor moves so `begin_cycle(to)` is accepted
    /// next.
    ///
    /// Only called by [`drive_events`] for ranges validated by
    /// [`next_event`](BusModel::next_event); the default is a no-op, which
    /// pairs with the default `next_event` of `None` (never invoked).
    fn advance(&mut self, from: Cycle, to: Cycle) {
        let _ = (from, to);
    }

    /// Drains buffered observer events (see
    /// [`ModelEvent`](crate::probe::ModelEvent)) into `sink`, in
    /// occurrence order — internal state changes the protocol's return
    /// values cannot surface, such as credit-eligibility flips.
    ///
    /// Called by the [`Simulation`](crate::sim::Simulation) loop after
    /// each executed cycle **only when an active probe is attached**; the
    /// default no-op means models pay nothing unless they opt into event
    /// recording (e.g. the bus workspace's flip watcher, which is off
    /// until explicitly enabled).
    fn drain_events(&mut self, sink: &mut dyn FnMut(crate::probe::ModelEvent)) {
        let _ = sink;
    }
}

/// Per-cycle verdict returned by the [`drive`] / [`drive_events`]
/// callback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Keep simulating.
    Continue,
    /// Stop after finishing the current cycle.
    Stop,
    /// The clients guarantee they will not interact with the bus (no posts,
    /// no withdrawals) before cycle `until`, and do not need to observe any
    /// cycle before it either — [`drive_events`] may fast-forward to
    /// `min(until, bus event horizon)`. [`drive`] treats this exactly like
    /// [`Control::Continue`], so a callback written for the fast path runs
    /// unchanged (and bit-identically) under the naive loop.
    Sleep(Cycle),
}

/// Result of a [`drive`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DriveOutcome {
    /// Cycles simulated (the loop ran cycles `0..cycles`).
    pub cycles: Cycle,
    /// Whether the callback requested the stop (`false` means the
    /// `max_cycles` safety limit was hit first).
    pub stopped: bool,
}

/// Drives `bus` for up to `max_cycles` cycles from cycle 0, visiting
/// **every** cycle.
///
/// Each cycle, the engine runs phase 1 ([`BusModel::begin_cycle`]), hands
/// the completion report to `cycle_fn` — which posts client traffic (phase
/// 2) and decides whether to stop — then runs phase 3
/// ([`BusModel::end_cycle`]). [`Control::Sleep`] is treated as
/// [`Control::Continue`]: this is the naive reference loop that
/// [`drive_events`] must reproduce bit for bit, and the loop to force when
/// debugging a suspected fast-path divergence.
pub fn drive<M: BusModel>(
    bus: &mut M,
    max_cycles: Cycle,
    mut cycle_fn: impl FnMut(&mut M, Cycle, Option<&M::Completion>) -> Control,
) -> DriveOutcome {
    let mut now: Cycle = 0;
    while now < max_cycles {
        let completed = bus.begin_cycle(now);
        let control = cycle_fn(bus, now, completed.as_ref());
        bus.end_cycle(now);
        now += 1;
        if control == Control::Stop {
            return DriveOutcome {
                cycles: now,
                stopped: true,
            };
        }
    }
    DriveOutcome {
        cycles: now,
        stopped: false,
    }
}

/// Drives `bus` like [`drive`], but jumps over provably uneventful cycle
/// ranges — the **event-horizon fast path**.
///
/// After each executed cycle, if the callback returned
/// [`Control::Sleep`]`(until)` *and* the bus can bound its own next event
/// via [`BusModel::next_event`], the engine bulk-advances the bus with
/// [`BusModel::advance`] and resumes the full three-phase protocol at
/// `min(until, event, max_cycles)`. Whenever either side declines — the
/// callback returns [`Control::Continue`], or `next_event` returns `None`
/// — the engine falls back to per-cycle stepping for that cycle, so the
/// fast path degrades gracefully to exactly [`drive`].
///
/// Because skipped ranges are ranges in which, by contract, no completion,
/// grant, post or RNG draw can occur, the observable outcome (grant trace,
/// wait statistics, cycle counters, stop cycle) is **bit-identical** to
/// [`drive`] with the same callback; the workspace's property tests assert
/// this across policies, filters and bus variants.
pub fn drive_events<M: BusModel>(
    bus: &mut M,
    max_cycles: Cycle,
    mut cycle_fn: impl FnMut(&mut M, Cycle, Option<&M::Completion>) -> Control,
) -> DriveOutcome {
    let mut now: Cycle = 0;
    while now < max_cycles {
        let completed = bus.begin_cycle(now);
        let control = cycle_fn(bus, now, completed.as_ref());
        bus.end_cycle(now);
        match control {
            Control::Stop => {
                return DriveOutcome {
                    cycles: now + 1,
                    stopped: true,
                }
            }
            Control::Continue => now += 1,
            Control::Sleep(until) => {
                let step = now + 1;
                let mut target = step;
                if until > step {
                    if let Some(event) = bus.next_event(now) {
                        let jump = event.min(until).min(max_cycles);
                        if jump > step {
                            bus.advance(now, jump);
                            target = jump;
                        }
                    }
                }
                now = target;
            }
        }
    }
    DriveOutcome {
        cycles: max_cycles,
        stopped: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal in-crate model for engine tests.
    #[derive(Debug)]
    struct OneShot {
        trace: GrantTrace,
        pending: Option<u32>,
        busy_until: Option<Cycle>,
        skipped: u64,
    }

    impl OneShot {
        fn new() -> Self {
            OneShot {
                trace: GrantTrace::counting(1),
                pending: None,
                busy_until: None,
                skipped: 0,
            }
        }
    }

    impl BusModel for OneShot {
        type Request = u32;
        type Completion = Cycle;
        type Error = &'static str;

        fn begin_cycle(&mut self, now: Cycle) -> Option<Cycle> {
            if self.busy_until == Some(now) {
                self.busy_until = None;
                return Some(now);
            }
            None
        }

        fn post(&mut self, req: u32) -> Result<(), &'static str> {
            if self.pending.is_some() {
                return Err("already pending");
            }
            self.pending = Some(req);
            Ok(())
        }

        fn end_cycle(&mut self, now: Cycle) -> Option<CoreId> {
            if self.busy_until.is_none() {
                if let Some(dur) = self.pending.take() {
                    self.busy_until = Some(now + dur as Cycle);
                    self.trace.record(now, CoreId::from_index(0), dur);
                    return Some(CoreId::from_index(0));
                }
            }
            None
        }

        fn owner(&self) -> Option<CoreId> {
            self.busy_until.map(|_| CoreId::from_index(0))
        }

        fn trace(&self) -> &GrantTrace {
            &self.trace
        }

        fn next_event(&mut self, now: Cycle) -> Option<Cycle> {
            match (self.busy_until, self.pending) {
                (Some(ends_at), _) => Some(ends_at),
                (None, Some(_)) => Some(now + 1),
                (None, None) => Some(Cycle::MAX),
            }
        }

        fn advance(&mut self, from: Cycle, to: Cycle) {
            self.skipped += to - from - 1;
        }
    }

    #[test]
    fn default_tick_bundles_phases() {
        let mut bus = OneShot::new();
        bus.post(3).unwrap();
        let out = bus.tick(0);
        assert_eq!(out.granted, Some(CoreId::from_index(0)));
        assert_eq!(out.completed, None);
        bus.tick(1);
        bus.tick(2);
        let out = bus.tick(3);
        assert_eq!(out.completed, Some(3));
        assert_eq!(bus.owner(), None);
    }

    #[test]
    fn tick_outcome_iterates_completion() {
        let none: TickOutcome<u32> = TickOutcome::default();
        assert_eq!(none.into_iter().count(), 0);
        let some = TickOutcome {
            completed: Some(7u32),
            granted: None,
        };
        assert_eq!(some.into_iter().collect::<Vec<_>>(), vec![7]);
    }

    #[test]
    fn drive_runs_to_horizon() {
        let mut bus = OneShot::new();
        let out = drive(&mut bus, 10, |bus, _now, _completed| {
            if bus.owner().is_none() {
                let _ = bus.post(2);
            }
            Control::Continue
        });
        assert_eq!(out.cycles, 10);
        assert!(!out.stopped);
        assert!(bus.trace().total_slots() >= 3);
    }

    #[test]
    fn drive_stops_on_request() {
        let mut bus = OneShot::new();
        let mut completions = 0;
        let out = drive(&mut bus, 1_000, |bus, _now, completed| {
            if completed.is_some() {
                completions += 1;
                return Control::Stop;
            }
            if bus.owner().is_none() {
                let _ = bus.post(5);
            }
            Control::Continue
        });
        assert!(out.stopped);
        assert_eq!(completions, 1);
        assert!(out.cycles < 1_000);
    }

    #[test]
    fn drive_on_empty_horizon_is_a_no_op() {
        let mut bus = OneShot::new();
        let out = drive(&mut bus, 0, |_, _, _| Control::Continue);
        assert_eq!(out.cycles, 0);
        assert!(!out.stopped);
    }

    #[test]
    fn drive_treats_sleep_as_continue() {
        let mut bus = OneShot::new();
        let mut visited = 0u64;
        let out = drive(&mut bus, 10, |_, _, _| {
            visited += 1;
            Control::Sleep(Cycle::MAX)
        });
        assert_eq!(out.cycles, 10);
        assert_eq!(visited, 10, "naive loop never skips");
        assert_eq!(bus.skipped, 0);
    }

    /// The periodic-poster closure used by the naive/fast equivalence
    /// tests: posts a 7-cycle request every 20 cycles.
    fn periodic(period: Cycle) -> impl FnMut(&mut OneShot, Cycle, Option<&Cycle>) -> Control {
        move |bus, now, _completed| {
            if now % period == 0 && bus.owner().is_none() && bus.pending.is_none() {
                bus.post(7).unwrap();
            }
            let next_issue = (now / period + 1) * period;
            Control::Sleep(next_issue)
        }
    }

    #[test]
    fn drive_events_skips_but_matches_drive() {
        let mut naive = OneShot::new();
        let a = drive(&mut naive, 200, periodic(20));
        let mut fast = OneShot::new();
        let b = drive_events(&mut fast, 200, periodic(20));
        assert_eq!(a, b);
        assert_eq!(naive.trace.total_slots(), fast.trace.total_slots());
        assert_eq!(
            naive.trace.busy_cycles(CoreId::from_index(0)),
            fast.trace.busy_cycles(CoreId::from_index(0))
        );
        assert!(fast.skipped > 100, "skipped only {}", fast.skipped);
    }

    #[test]
    fn drive_events_stops_at_the_same_cycle_as_drive() {
        let stopper = |bus: &mut OneShot, _now: Cycle, completed: Option<&Cycle>| {
            if completed.is_some() {
                return Control::Stop;
            }
            if bus.owner().is_none() && bus.pending.is_none() {
                bus.post(9).unwrap();
            }
            Control::Sleep(Cycle::MAX)
        };
        let mut naive = OneShot::new();
        let a = drive(&mut naive, 1_000, stopper);
        let mut fast = OneShot::new();
        let b = drive_events(&mut fast, 1_000, stopper);
        assert!(a.stopped && b.stopped);
        assert_eq!(a.cycles, b.cycles);
        assert!(fast.skipped > 0);
    }

    #[test]
    fn drive_events_respects_the_safety_limit() {
        let mut bus = OneShot::new();
        let out = drive_events(&mut bus, 50, |_, _, _| Control::Sleep(Cycle::MAX));
        assert_eq!(out.cycles, 50);
        assert!(!out.stopped);
        // One executed cycle + 49 bulk-advanced ones.
        assert_eq!(bus.skipped, 49);
    }

    #[test]
    fn drive_events_steps_when_the_bus_cannot_predict() {
        /// A model whose `next_event` keeps the default `None`.
        #[derive(Debug)]
        struct Opaque(OneShot);
        impl BusModel for Opaque {
            type Request = u32;
            type Completion = Cycle;
            type Error = &'static str;
            fn begin_cycle(&mut self, now: Cycle) -> Option<Cycle> {
                self.0.begin_cycle(now)
            }
            fn post(&mut self, req: u32) -> Result<(), &'static str> {
                self.0.post(req)
            }
            fn end_cycle(&mut self, now: Cycle) -> Option<CoreId> {
                self.0.end_cycle(now)
            }
            fn owner(&self) -> Option<CoreId> {
                self.0.owner()
            }
            fn trace(&self) -> &GrantTrace {
                self.0.trace()
            }
        }
        let mut bus = Opaque(OneShot::new());
        let mut visited = 0u64;
        let out = drive_events(&mut bus, 30, |_, _, _| {
            visited += 1;
            Control::Sleep(Cycle::MAX)
        });
        assert_eq!(out.cycles, 30);
        assert_eq!(visited, 30, "default next_event must disable skipping");
        assert_eq!(bus.0.skipped, 0);
    }
}
