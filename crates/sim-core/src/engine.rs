//! The unified cycle-driving engine: one [`BusModel`] trait over every bus
//! variant, and one [`drive`] loop shared by the platform, the benchmark
//! harness and the examples.
//!
//! # Why
//!
//! The repository models two interconnect substrates — a non-split bus and
//! a split-transaction bus — and historically each exposed its own cycle
//! protocol (`tick(now)` versus `begin_cycle`/`end_cycle`), so every
//! harness hand-rolled its own drive loop. `BusModel` fixes the protocol
//! once:
//!
//! 1. [`BusModel::begin_cycle`]`(t)` — a transaction ending at `t`
//!    completes and is reported;
//! 2. clients post requests for cycle `t` via [`BusModel::post`];
//! 3. [`BusModel::end_cycle`]`(t)` — arbitration runs if the bus is free
//!    and per-cycle filter state (credit counters) advances.
//!
//! [`BusModel::tick`] bundles the phases for clients that post between
//! cycles, and [`drive`] owns the `while` loop, the stop condition and the
//! cycle counter, so a policy × filter × bus-variant scenario is expressed
//! as *one closure* that posts traffic.
//!
//! # Example
//!
//! ```
//! use sim_core::engine::{drive, BusModel, Control};
//! use sim_core::trace::GrantTrace;
//! use sim_core::{CoreId, Cycle};
//!
//! /// A one-core toy bus: every posted unit-length request is granted on
//! /// the next free cycle.
//! #[derive(Debug)]
//! struct ToyBus {
//!     trace: GrantTrace,
//!     queue: u64,
//!     busy: bool,
//! }
//!
//! impl ToyBus {
//!     fn new() -> Self {
//!         ToyBus { trace: GrantTrace::counting(1), queue: 0, busy: false }
//!     }
//! }
//!
//! impl BusModel for ToyBus {
//!     type Request = ();
//!     type Completion = ();
//!     type Error = ();
//!
//!     fn begin_cycle(&mut self, _now: Cycle) -> Option<()> {
//!         self.busy.then(|| self.busy = false)
//!     }
//!     fn post(&mut self, _req: ()) -> Result<(), ()> {
//!         self.queue += 1;
//!         Ok(())
//!     }
//!     fn end_cycle(&mut self, now: Cycle) -> Option<CoreId> {
//!         if !self.busy && self.queue > 0 {
//!             self.queue -= 1;
//!             self.busy = true;
//!             self.trace.record(now, CoreId::from_index(0), 1);
//!             return Some(CoreId::from_index(0));
//!         }
//!         None
//!     }
//!     fn owner(&self) -> Option<CoreId> {
//!         self.busy.then(|| CoreId::from_index(0))
//!     }
//!     fn trace(&self) -> &GrantTrace {
//!         &self.trace
//!     }
//! }
//!
//! let mut bus = ToyBus::new();
//! let outcome = drive(&mut bus, 100, |bus, now, _completed| {
//!     if now % 2 == 0 {
//!         bus.post(()).unwrap();
//!     }
//!     Control::Continue
//! });
//! assert_eq!(outcome.cycles, 100);
//! assert!(!outcome.stopped);
//! assert_eq!(bus.trace().total_slots(), 50);
//! ```

use crate::trace::GrantTrace;
use crate::{CoreId, Cycle};

/// Combined result of one [`BusModel::tick`].
///
/// Iterating a `TickOutcome` yields the completion, if any, which keeps the
/// `for completed in bus.tick(now) { .. }` idiom of the split bus working
/// against the unified API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TickOutcome<C> {
    /// Transaction that completed at this cycle, if any.
    pub completed: Option<C>,
    /// Core granted the bus at this cycle, if any.
    pub granted: Option<CoreId>,
}

impl<C> Default for TickOutcome<C> {
    fn default() -> Self {
        TickOutcome {
            completed: None,
            granted: None,
        }
    }
}

impl<C> IntoIterator for TickOutcome<C> {
    type Item = C;
    type IntoIter = std::option::IntoIter<C>;

    fn into_iter(self) -> Self::IntoIter {
        self.completed.into_iter()
    }
}

/// The cycle protocol shared by every bus variant.
///
/// Implementations advance in two phases per cycle so that a core whose
/// transaction completes at cycle `t` can post its next request *within*
/// cycle `t` and be re-arbitrated immediately (back-to-back transactions,
/// as on hardware where the request lines are already raised when a
/// transfer ends). See the [module documentation](self) for the full
/// protocol and an end-to-end example.
pub trait BusModel {
    /// What clients post (a plain request, or `(core, request)` for buses
    /// that address requests per core).
    type Request;
    /// The completion report of phase 1.
    type Completion;
    /// Rejection returned by [`BusModel::post`].
    type Error: std::fmt::Debug;

    /// Phase 1 of cycle `now`: reports a transaction ending at `now`.
    fn begin_cycle(&mut self, now: Cycle) -> Option<Self::Completion>;

    /// Phase 2 of cycle `now`: posts a request.
    ///
    /// # Errors
    ///
    /// Implementations reject malformed or duplicate requests.
    fn post(&mut self, req: Self::Request) -> Result<(), Self::Error>;

    /// Phase 3 of cycle `now`: arbitration (if the bus is free) and filter
    /// bookkeeping. Returns the freshly granted core, if any.
    fn end_cycle(&mut self, now: Cycle) -> Option<CoreId>;

    /// The core currently holding the bus, if any.
    fn owner(&self) -> Option<CoreId>;

    /// The grant trace accumulated so far.
    fn trace(&self) -> &GrantTrace;

    /// Convenience single-phase tick: [`begin_cycle`](BusModel::begin_cycle)
    /// immediately followed by [`end_cycle`](BusModel::end_cycle); any posts
    /// must happen between ticks.
    fn tick(&mut self, now: Cycle) -> TickOutcome<Self::Completion> {
        let completed = self.begin_cycle(now);
        let granted = self.end_cycle(now);
        TickOutcome { completed, granted }
    }
}

/// Per-cycle verdict returned by the [`drive`] callback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Keep simulating.
    Continue,
    /// Stop after finishing the current cycle.
    Stop,
}

/// Result of a [`drive`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DriveOutcome {
    /// Cycles simulated (the loop ran cycles `0..cycles`).
    pub cycles: Cycle,
    /// Whether the callback requested the stop (`false` means the
    /// `max_cycles` safety limit was hit first).
    pub stopped: bool,
}

/// Drives `bus` for up to `max_cycles` cycles from cycle 0.
///
/// Each cycle, the engine runs phase 1 ([`BusModel::begin_cycle`]), hands
/// the completion report to `cycle_fn` — which posts client traffic (phase
/// 2) and decides whether to stop — then runs phase 3
/// ([`BusModel::end_cycle`]). This is the *only* cycle loop in the
/// workspace: the platform's `run_once`, the benchmark binaries and the
/// examples all express their scenarios as `cycle_fn` closures.
pub fn drive<M: BusModel>(
    bus: &mut M,
    max_cycles: Cycle,
    mut cycle_fn: impl FnMut(&mut M, Cycle, Option<&M::Completion>) -> Control,
) -> DriveOutcome {
    let mut now: Cycle = 0;
    while now < max_cycles {
        let completed = bus.begin_cycle(now);
        let control = cycle_fn(bus, now, completed.as_ref());
        bus.end_cycle(now);
        now += 1;
        if control == Control::Stop {
            return DriveOutcome {
                cycles: now,
                stopped: true,
            };
        }
    }
    DriveOutcome {
        cycles: now,
        stopped: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal in-crate model for engine tests.
    #[derive(Debug)]
    struct OneShot {
        trace: GrantTrace,
        pending: Option<u32>,
        busy_until: Option<Cycle>,
    }

    impl OneShot {
        fn new() -> Self {
            OneShot {
                trace: GrantTrace::counting(1),
                pending: None,
                busy_until: None,
            }
        }
    }

    impl BusModel for OneShot {
        type Request = u32;
        type Completion = Cycle;
        type Error = &'static str;

        fn begin_cycle(&mut self, now: Cycle) -> Option<Cycle> {
            if self.busy_until == Some(now) {
                self.busy_until = None;
                return Some(now);
            }
            None
        }

        fn post(&mut self, req: u32) -> Result<(), &'static str> {
            if self.pending.is_some() {
                return Err("already pending");
            }
            self.pending = Some(req);
            Ok(())
        }

        fn end_cycle(&mut self, now: Cycle) -> Option<CoreId> {
            if self.busy_until.is_none() {
                if let Some(dur) = self.pending.take() {
                    self.busy_until = Some(now + dur as Cycle);
                    self.trace.record(now, CoreId::from_index(0), dur);
                    return Some(CoreId::from_index(0));
                }
            }
            None
        }

        fn owner(&self) -> Option<CoreId> {
            self.busy_until.map(|_| CoreId::from_index(0))
        }

        fn trace(&self) -> &GrantTrace {
            &self.trace
        }
    }

    #[test]
    fn default_tick_bundles_phases() {
        let mut bus = OneShot::new();
        bus.post(3).unwrap();
        let out = bus.tick(0);
        assert_eq!(out.granted, Some(CoreId::from_index(0)));
        assert_eq!(out.completed, None);
        bus.tick(1);
        bus.tick(2);
        let out = bus.tick(3);
        assert_eq!(out.completed, Some(3));
        assert_eq!(bus.owner(), None);
    }

    #[test]
    fn tick_outcome_iterates_completion() {
        let none: TickOutcome<u32> = TickOutcome::default();
        assert_eq!(none.into_iter().count(), 0);
        let some = TickOutcome {
            completed: Some(7u32),
            granted: None,
        };
        assert_eq!(some.into_iter().collect::<Vec<_>>(), vec![7]);
    }

    #[test]
    fn drive_runs_to_horizon() {
        let mut bus = OneShot::new();
        let out = drive(&mut bus, 10, |bus, _now, _completed| {
            if bus.owner().is_none() {
                let _ = bus.post(2);
            }
            Control::Continue
        });
        assert_eq!(out.cycles, 10);
        assert!(!out.stopped);
        assert!(bus.trace().total_slots() >= 3);
    }

    #[test]
    fn drive_stops_on_request() {
        let mut bus = OneShot::new();
        let mut completions = 0;
        let out = drive(&mut bus, 1_000, |bus, _now, completed| {
            if completed.is_some() {
                completions += 1;
                return Control::Stop;
            }
            if bus.owner().is_none() {
                let _ = bus.post(5);
            }
            Control::Continue
        });
        assert!(out.stopped);
        assert_eq!(completions, 1);
        assert!(out.cycles < 1_000);
    }

    #[test]
    fn drive_on_empty_horizon_is_a_no_op() {
        let mut bus = OneShot::new();
        let out = drive(&mut bus, 0, |_, _, _| Control::Continue);
        assert_eq!(out.cycles, 0);
        assert!(!out.stopped);
    }
}
