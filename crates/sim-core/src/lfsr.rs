//! Model of the APRANDBANK hardware random-bit bank.
//!
//! The paper's FPGA prototype feeds its random-permutation arbiter from an
//! "APRANDBANK module that delivers random bits every cycle", an IEC-61508
//! SIL-3 compliant pseudo-random number generator (reference \[3\] of the
//! paper: Agirre et al., DSD 2015). That design is a bank of maximal-length
//! Galois LFSRs with online health monitoring; this module reproduces the
//! structure: a [`LfsrBank`] of independent 32-bit Galois LFSRs, one bit per
//! LFSR per cycle, plus the two health checks a safety-qualified PRNG must
//! run (stuck-at detection and bit-balance monitoring).
//!
//! The arbiter consumes bits via [`LfsrBank::next_bits`]; a permutation draw
//! for `N` cores consumes `N·log2(N)`-ish bits per arbitration round.

use crate::SimError;

/// Default polynomial: x^32 + x^22 + x^2 + x + 1 (maximal length, taps as a
/// Galois feedback mask).
pub const POLY_32_DEFAULT: u32 = 0x8020_0003;

/// A single 32-bit Galois LFSR.
///
/// Shifts one bit per [`Lfsr::step`]; the output bit is the bit shifted out.
/// With a maximal-length polynomial the period is `2^32 - 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lfsr {
    state: u32,
    poly: u32,
}

impl Lfsr {
    /// Creates an LFSR with the given non-zero seed and feedback polynomial.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `seed == 0` (the all-zero
    /// state is the one fixed point of an LFSR and must be excluded).
    pub fn new(seed: u32, poly: u32) -> Result<Self, SimError> {
        if seed == 0 {
            return Err(SimError::InvalidConfig {
                what: "lfsr seed",
                why: "seed must be non-zero (all-zero state is absorbing)".into(),
            });
        }
        Ok(Lfsr { state: seed, poly })
    }

    /// Advances one cycle and returns the output bit.
    #[inline]
    pub fn step(&mut self) -> bool {
        let out = self.state & 1 == 1;
        self.state >>= 1;
        if out {
            self.state ^= self.poly;
        }
        out
    }

    /// Current internal state (for health monitoring and tests).
    pub fn state(&self) -> u32 {
        self.state
    }
}

/// Health status reported by the bank's online monitors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LfsrHealth {
    /// All monitors pass.
    Ok,
    /// An LFSR output has been constant for the whole observation window
    /// (stuck-at fault — in hardware, a latch-up or routing fault).
    StuckAt {
        /// Index of the faulty LFSR within the bank.
        lane: usize,
    },
    /// The ones-density of a lane left the `[0.5 - tol, 0.5 + tol]` band.
    Imbalanced {
        /// Index of the suspicious LFSR within the bank.
        lane: usize,
        /// Observed ones-density over the window.
        density: f64,
    },
}

/// A bank of independent Galois LFSRs delivering `width` random bits per
/// cycle, with online health monitoring.
///
/// # Example
///
/// ```
/// use sim_core::lfsr::LfsrBank;
///
/// let mut bank = LfsrBank::new(8, 0xDEAD_BEEF).unwrap();
/// let bits = bank.next_bits(); // 8 fresh bits, one per lane
/// assert!(bits < 1 << 8);
/// let word = bank.next_word(16); // 16 bits gathered over 2 cycles
/// assert!(word < 1 << 16);
/// ```
#[derive(Debug, Clone)]
pub struct LfsrBank {
    lanes: Vec<Lfsr>,
    // Health monitoring state: per-lane ones count and window length.
    window: u32,
    ones: Vec<u32>,
    transitions: Vec<u32>,
    last_bit: Vec<bool>,
    observed: u32,
}

impl LfsrBank {
    /// Observation window (cycles) for the health monitors.
    pub const HEALTH_WINDOW: u32 = 4096;

    /// Creates a bank of `width` lanes seeded (non-zero, distinct) from
    /// `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `width == 0` or
    /// `width > 64`.
    pub fn new(width: usize, seed: u64) -> Result<Self, SimError> {
        if width == 0 || width > 64 {
            return Err(SimError::InvalidConfig {
                what: "lfsr bank width",
                why: format!("width must be in 1..=64, got {width}"),
            });
        }
        let mut lanes = Vec::with_capacity(width);
        let mut s = seed;
        for _ in 0..width {
            // Derive distinct non-zero 32-bit seeds via splitmix-style mixing.
            s = s
                .wrapping_mul(0x2545_f491_4f6c_dd1d)
                .wrapping_add(0x9e37_79b9_7f4a_7c15);
            let seed32 = ((s >> 32) as u32) | 1; // force non-zero
            lanes.push(Lfsr::new(seed32, POLY_32_DEFAULT).expect("non-zero seed"));
        }
        Ok(LfsrBank {
            ones: vec![0; width],
            transitions: vec![0; width],
            last_bit: vec![false; width],
            lanes,
            window: Self::HEALTH_WINDOW,
            observed: 0,
        })
    }

    /// Number of lanes (= bits delivered per cycle).
    pub fn width(&self) -> usize {
        self.lanes.len()
    }

    /// Advances every lane one cycle and returns the fresh bits packed into
    /// the low `width` bits of a `u64` (lane 0 is bit 0).
    pub fn next_bits(&mut self) -> u64 {
        let mut word = 0u64;
        let first = self.observed == 0;
        for (i, lane) in self.lanes.iter_mut().enumerate() {
            let bit = lane.step();
            if bit {
                word |= 1 << i;
                self.ones[i] += 1;
            }
            if !first && bit != self.last_bit[i] {
                self.transitions[i] += 1;
            }
            self.last_bit[i] = bit;
        }
        self.observed += 1;
        if self.observed >= self.window {
            // Monitors are evaluated lazily via `health`; reset the window.
            self.observed = 0;
            self.ones.iter_mut().for_each(|c| *c = 0);
            self.transitions.iter_mut().for_each(|c| *c = 0);
        }
        word
    }

    /// Gathers `bits` random bits (over as many cycles as needed) into one
    /// word, most-recent cycle in the high bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0` or `bits > 64`.
    pub fn next_word(&mut self, bits: u32) -> u64 {
        assert!((1..=64).contains(&bits), "bits must be in 1..=64");
        let w = self.width() as u32;
        let mut acc = 0u64;
        let mut got = 0u32;
        while got < bits {
            let take = (bits - got).min(w);
            let mask = if take >= 64 {
                u64::MAX
            } else {
                (1u64 << take) - 1
            };
            acc |= (self.next_bits() & mask) << got;
            got += take;
        }
        acc
    }

    /// Uniform draw in `0..n` by rejection sampling on [`LfsrBank::next_word`].
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "next_below(0)");
        if n == 1 {
            return 0;
        }
        let bits = 64 - (n - 1).leading_zeros();
        loop {
            let draw = self.next_word(bits);
            if draw < n {
                return draw;
            }
        }
    }

    /// Evaluates the health monitors over the bits observed in the current
    /// window so far.
    ///
    /// Following the safety-PRNG design of the paper's reference \[3\], two
    /// online checks run continuously: a stuck-at detector (no transitions in
    /// the window once enough bits were observed) and a ones-density monitor.
    pub fn health(&self) -> LfsrHealth {
        // Need a minimum of observations before judging.
        if self.observed < 256 {
            return LfsrHealth::Ok;
        }
        for lane in 0..self.lanes.len() {
            if self.transitions[lane] == 0 {
                return LfsrHealth::StuckAt { lane };
            }
            let density = self.ones[lane] as f64 / self.observed as f64;
            if !(0.40..=0.60).contains(&density) {
                return LfsrHealth::Imbalanced { lane, density };
            }
        }
        LfsrHealth::Ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lfsr_rejects_zero_seed() {
        assert!(Lfsr::new(0, POLY_32_DEFAULT).is_err());
    }

    #[test]
    fn lfsr_never_reaches_zero_state() {
        let mut l = Lfsr::new(1, POLY_32_DEFAULT).unwrap();
        for _ in 0..100_000 {
            l.step();
            assert_ne!(l.state(), 0);
        }
    }

    #[test]
    fn lfsr_period_is_not_short() {
        // A maximal 32-bit LFSR must not return to its seed within any
        // window we can afford to check.
        let seed = 0xACE1_u32;
        let mut l = Lfsr::new(seed, POLY_32_DEFAULT).unwrap();
        for i in 0..200_000u32 {
            l.step();
            assert!(!(l.state() == seed && i < 199_999), "short period at {i}");
        }
    }

    #[test]
    fn bank_width_validation() {
        assert!(LfsrBank::new(0, 1).is_err());
        assert!(LfsrBank::new(65, 1).is_err());
        assert!(LfsrBank::new(64, 1).is_ok());
    }

    #[test]
    fn bank_bits_fit_width() {
        let mut bank = LfsrBank::new(5, 42).unwrap();
        for _ in 0..1000 {
            assert!(bank.next_bits() < 32);
        }
    }

    #[test]
    fn bank_lanes_are_decorrelated() {
        let mut bank = LfsrBank::new(2, 7).unwrap();
        let mut equal = 0;
        let n = 4096;
        for _ in 0..n {
            let w = bank.next_bits();
            if (w & 1) == ((w >> 1) & 1) {
                equal += 1;
            }
        }
        let frac = equal as f64 / n as f64;
        assert!(
            (0.45..0.55).contains(&frac),
            "lanes correlated: agreement {frac}"
        );
    }

    #[test]
    fn next_word_respects_bit_count() {
        let mut bank = LfsrBank::new(4, 3).unwrap();
        for bits in 1..=64u32 {
            let w = bank.next_word(bits);
            if bits < 64 {
                assert!(w < 1u64 << bits, "word {w} too wide for {bits} bits");
            }
        }
    }

    #[test]
    fn next_below_is_in_range_and_covers() {
        let mut bank = LfsrBank::new(8, 11).unwrap();
        let mut seen = [false; 7];
        for _ in 0..2000 {
            let v = bank.next_below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "coverage: {seen:?}");
    }

    #[test]
    fn health_ok_for_good_bank() {
        let mut bank = LfsrBank::new(8, 1234).unwrap();
        for _ in 0..2048 {
            bank.next_bits();
        }
        assert_eq!(bank.health(), LfsrHealth::Ok);
    }

    #[test]
    fn ones_density_is_balanced() {
        let mut bank = LfsrBank::new(1, 99).unwrap();
        let n = 32_768u32;
        let mut ones = 0u32;
        for _ in 0..n {
            ones += (bank.next_bits() & 1) as u32;
        }
        let density = ones as f64 / n as f64;
        assert!((0.48..0.52).contains(&density), "density {density}");
    }
}
