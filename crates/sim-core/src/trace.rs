//! Bus grant traces and the fairness metrics built on them.
//!
//! The paper's whole argument is about the difference between two fairness
//! notions for a shared bus:
//!
//! * **slot fairness** — each contender gets the same *number of grants*;
//! * **cycle (bandwidth) fairness** — each contender gets the same *number
//!   of bus cycles*.
//!
//! A [`GrantTrace`] records every grant `(cycle, core, duration)` of a run.
//! From it, [`ShareReport`] computes both the slot shares and the cycle
//! shares per core, plus the Jain fairness index of each — the quantitative
//! form of the paper's Section II example (two alternating cores with 5- and
//! 45-cycle requests have slot shares 50%/50% but cycle shares 10%/90%).

use crate::{CoreId, Cycle};

/// One bus grant: which core obtained the bus, when, and for how long.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GrantRecord {
    /// Cycle at which the transaction started occupying the bus.
    pub start: Cycle,
    /// The core that was granted the bus.
    pub core: CoreId,
    /// Bus hold time in cycles (the transaction is non-split).
    pub duration: u32,
}

/// A record of all grants issued during a run.
///
/// Recording can be disabled (the default for large Monte-Carlo campaigns);
/// a disabled trace cheaply counts per-core totals without storing records.
///
/// # Example
///
/// ```
/// use sim_core::{CoreId, trace::GrantTrace};
///
/// let mut t = GrantTrace::counting(2);
/// t.record(0, CoreId::from_index(0), 5);
/// t.record(5, CoreId::from_index(1), 45);
/// let report = t.share_report();
/// assert_eq!(report.slot_share(CoreId::from_index(0)), 0.5);
/// assert!((report.cycle_share(CoreId::from_index(0)) - 0.1).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct GrantTrace {
    records: Option<Vec<GrantRecord>>,
    slots: Vec<u64>,
    busy_cycles: Vec<u64>,
    first_start: Option<Cycle>,
    last_end: Cycle,
}

impl GrantTrace {
    /// A trace that stores every [`GrantRecord`] (use in tests/analysis).
    pub fn recording(n_cores: usize) -> Self {
        GrantTrace {
            records: Some(Vec::new()),
            slots: vec![0; n_cores],
            busy_cycles: vec![0; n_cores],
            first_start: None,
            last_end: 0,
        }
    }

    /// A trace that only keeps per-core totals (cheap; use in campaigns).
    pub fn counting(n_cores: usize) -> Self {
        GrantTrace {
            records: None,
            slots: vec![0; n_cores],
            busy_cycles: vec![0; n_cores],
            first_start: None,
            last_end: 0,
        }
    }

    /// Number of cores this trace was sized for.
    pub fn n_cores(&self) -> usize {
        self.slots.len()
    }

    /// Records a grant.
    ///
    /// # Panics
    ///
    /// Panics if `core` is outside the trace's core range.
    pub fn record(&mut self, start: Cycle, core: CoreId, duration: u32) {
        let idx = core.index();
        self.slots[idx] += 1;
        self.busy_cycles[idx] += duration as u64;
        if self.first_start.is_none() {
            self.first_start = Some(start);
        }
        self.last_end = self.last_end.max(start + duration as Cycle);
        if let Some(records) = &mut self.records {
            records.push(GrantRecord {
                start,
                core,
                duration,
            });
        }
    }

    /// The stored records, if this trace is recording.
    pub fn records(&self) -> Option<&[GrantRecord]> {
        self.records.as_deref()
    }

    /// Clears all recorded grants and totals while keeping the allocated
    /// buffers (and the recording/counting mode), so a trace can be reused
    /// across Monte-Carlo runs without reallocating.
    pub fn clear(&mut self) {
        if let Some(records) = &mut self.records {
            records.clear();
        }
        self.slots.fill(0);
        self.busy_cycles.fill(0);
        self.first_start = None;
        self.last_end = 0;
    }

    /// Grants issued to `core`.
    pub fn slots(&self, core: CoreId) -> u64 {
        self.slots[core.index()]
    }

    /// Bus cycles consumed by `core`.
    pub fn busy_cycles(&self, core: CoreId) -> u64 {
        self.busy_cycles[core.index()]
    }

    /// Total grants across cores.
    pub fn total_slots(&self) -> u64 {
        self.slots.iter().sum()
    }

    /// Total bus-busy cycles across cores.
    pub fn total_busy_cycles(&self) -> u64 {
        self.busy_cycles.iter().sum()
    }

    /// Cycle of the first grant start, if any grant was recorded.
    pub fn first_start(&self) -> Option<Cycle> {
        self.first_start
    }

    /// End cycle of the latest-ending grant (0 if none).
    pub fn last_end(&self) -> Cycle {
        self.last_end
    }

    /// Bus utilization over `total_cycles` of simulated time.
    ///
    /// # Panics
    ///
    /// Panics if `total_cycles == 0`.
    pub fn utilization(&self, total_cycles: Cycle) -> f64 {
        assert!(total_cycles > 0, "utilization over zero cycles");
        self.total_busy_cycles() as f64 / total_cycles as f64
    }

    /// Computes the slot/cycle share report.
    pub fn share_report(&self) -> ShareReport {
        ShareReport {
            slots: self.slots.clone(),
            busy_cycles: self.busy_cycles.clone(),
        }
    }

    /// Longest gap (in cycles) between consecutive grants to `core`,
    /// measured start-to-start. Requires a recording trace.
    ///
    /// Returns `None` if the trace is not recording or `core` received
    /// fewer than two grants. This is the "temporal starvation" metric the
    /// paper mentions when discussing budget caps above MaxL.
    pub fn max_grant_gap(&self, core: CoreId) -> Option<Cycle> {
        let records = self.records.as_ref()?;
        let mut prev: Option<Cycle> = None;
        let mut max_gap: Option<Cycle> = None;
        for r in records.iter().filter(|r| r.core == core) {
            if let Some(p) = prev {
                let gap = r.start - p;
                max_gap = Some(max_gap.map_or(gap, |m: Cycle| m.max(gap)));
            }
            prev = Some(r.start);
        }
        max_gap
    }

    /// Longest run of back-to-back grants to the same core (count of
    /// consecutive grants). Requires a recording trace.
    pub fn max_burst_len(&self, core: CoreId) -> Option<u64> {
        let records = self.records.as_ref()?;
        let mut best = 0u64;
        let mut cur = 0u64;
        for r in records {
            if r.core == core {
                cur += 1;
                best = best.max(cur);
            } else {
                cur = 0;
            }
        }
        Some(best)
    }
}

/// Slot and cycle shares per core, with Jain fairness indices.
#[derive(Debug, Clone, PartialEq)]
pub struct ShareReport {
    slots: Vec<u64>,
    busy_cycles: Vec<u64>,
}

impl ShareReport {
    /// Fraction of all grants that went to `core` (0 if no grants at all).
    pub fn slot_share(&self, core: CoreId) -> f64 {
        let total: u64 = self.slots.iter().sum();
        if total == 0 {
            0.0
        } else {
            self.slots[core.index()] as f64 / total as f64
        }
    }

    /// Fraction of all bus-busy cycles consumed by `core` (0 if none).
    pub fn cycle_share(&self, core: CoreId) -> f64 {
        let total: u64 = self.busy_cycles.iter().sum();
        if total == 0 {
            0.0
        } else {
            self.busy_cycles[core.index()] as f64 / total as f64
        }
    }

    /// Jain fairness index of the slot distribution, in `(0, 1]`.
    ///
    /// `J = (Σx)² / (n·Σx²)`; 1 means perfectly equal, `1/n` means one core
    /// monopolizes.
    pub fn slot_fairness(&self) -> f64 {
        jain(&self.slots)
    }

    /// Jain fairness index of the cycle distribution, in `(0, 1]`.
    pub fn cycle_fairness(&self) -> f64 {
        jain(&self.busy_cycles)
    }

    /// Per-core slot counts.
    pub fn slot_counts(&self) -> &[u64] {
        &self.slots
    }

    /// Per-core busy-cycle counts.
    pub fn cycle_counts(&self) -> &[u64] {
        &self.busy_cycles
    }
}

fn jain(xs: &[u64]) -> f64 {
    let n = xs.len() as f64;
    let sum: f64 = xs.iter().map(|&x| x as f64).sum();
    let sq_sum: f64 = xs.iter().map(|&x| (x as f64) * (x as f64)).sum();
    if sq_sum == 0.0 {
        1.0 // no traffic: vacuously fair
    } else {
        sum * sum / (n * sq_sum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: usize) -> CoreId {
        CoreId::from_index(i)
    }

    #[test]
    fn paper_section_ii_example_shares() {
        // Two cores alternating: 5-cycle vs 45-cycle requests.
        let mut t = GrantTrace::counting(2);
        let mut now = 0;
        for _ in 0..100 {
            t.record(now, c(0), 5);
            now += 5;
            t.record(now, c(1), 45);
            now += 45;
        }
        let r = t.share_report();
        assert!((r.slot_share(c(0)) - 0.5).abs() < 1e-12);
        assert!((r.slot_share(c(1)) - 0.5).abs() < 1e-12);
        assert!((r.cycle_share(c(0)) - 0.10).abs() < 1e-12);
        assert!((r.cycle_share(c(1)) - 0.90).abs() < 1e-12);
        // Slot-fair but cycle-unfair, numerically:
        assert!(r.slot_fairness() > 0.999);
        assert!(r.cycle_fairness() < 0.65);
    }

    #[test]
    fn recording_trace_stores_records() {
        let mut t = GrantTrace::recording(2);
        t.record(3, c(1), 7);
        t.record(10, c(0), 2);
        let recs = t.records().unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(
            recs[0],
            GrantRecord {
                start: 3,
                core: c(1),
                duration: 7
            }
        );
        assert_eq!(t.first_start(), Some(3));
        assert_eq!(t.last_end(), 12);
    }

    #[test]
    fn clear_resets_totals_but_keeps_the_mode() {
        let mut t = GrantTrace::recording(2);
        t.record(0, c(0), 5);
        t.record(5, c(1), 45);
        t.clear();
        assert_eq!(t.records().unwrap().len(), 0, "still recording");
        assert_eq!(t.total_slots(), 0);
        assert_eq!(t.total_busy_cycles(), 0);
        assert_eq!(t.first_start(), None);
        assert_eq!(t.last_end(), 0);
        t.record(3, c(1), 7);
        assert_eq!(t.records().unwrap().len(), 1);

        let mut counting = GrantTrace::counting(2);
        counting.record(0, c(0), 4);
        counting.clear();
        assert!(counting.records().is_none(), "still counting-only");
        assert_eq!(counting.slots(c(0)), 0);
    }

    #[test]
    fn counting_trace_has_no_records() {
        let mut t = GrantTrace::counting(2);
        t.record(0, c(0), 4);
        assert!(t.records().is_none());
        assert_eq!(t.slots(c(0)), 1);
        assert_eq!(t.busy_cycles(c(0)), 4);
    }

    #[test]
    fn utilization_counts_busy_fraction() {
        let mut t = GrantTrace::counting(1);
        t.record(0, c(0), 25);
        t.record(50, c(0), 25);
        assert!((t.utilization(100) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn max_grant_gap_measures_starvation() {
        let mut t = GrantTrace::recording(2);
        t.record(0, c(0), 5);
        t.record(5, c(1), 5);
        t.record(100, c(0), 5);
        t.record(110, c(0), 5);
        assert_eq!(t.max_grant_gap(c(0)), Some(100));
        assert_eq!(t.max_grant_gap(c(1)), None); // only one grant
    }

    #[test]
    fn max_burst_len_counts_back_to_back() {
        let mut t = GrantTrace::recording(2);
        for (core, _) in [(0, 0); 3] {
            t.record(0, c(core), 1);
        }
        t.record(3, c(1), 1);
        t.record(4, c(0), 1);
        assert_eq!(t.max_burst_len(c(0)), Some(3));
        assert_eq!(t.max_burst_len(c(1)), Some(1));
    }

    #[test]
    fn jain_index_extremes() {
        assert!((jain(&[1, 1, 1, 1]) - 1.0).abs() < 1e-12);
        assert!((jain(&[4, 0, 0, 0]) - 0.25).abs() < 1e-12);
        assert_eq!(jain(&[0, 0]), 1.0);
    }

    #[test]
    fn empty_report_is_neutral() {
        let t = GrantTrace::counting(4);
        let r = t.share_report();
        assert_eq!(r.slot_share(c(0)), 0.0);
        assert_eq!(r.cycle_share(c(3)), 0.0);
        assert_eq!(r.slot_fairness(), 1.0);
    }
}
