//! Dependency-free structured-result emission: a minimal JSON value tree
//! and CSV field escaping.
//!
//! Campaign reports need to leave the process in a machine-readable form
//! (plots, regression dashboards, spreadsheet imports) without pulling in
//! `serde` — the workspace builds offline with zero external crates. This
//! module provides the two formats the scenario engine exports:
//!
//! * [`Json`] — a small JSON value tree with a pretty renderer. Numbers
//!   are `f64` (like JSON itself); non-finite values render as `null`.
//! * [`csv_field`] — RFC-4180 field quoting for the CSV writer.
//!
//! # Example
//!
//! ```
//! use sim_core::export::Json;
//!
//! let doc = Json::obj([
//!     ("name", Json::str("paper_fig1")),
//!     ("cells", Json::Arr(vec![Json::Num(1.0), Json::Num(3.34)])),
//! ]);
//! let text = doc.render();
//! assert!(text.contains("\"name\": \"paper_fig1\""));
//! assert!(text.contains("3.34"));
//! ```

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number. Non-finite values render as `null` (JSON has no NaN).
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience constructor for an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// An optional number: `None` renders as `null`.
    pub fn opt_num(x: Option<f64>) -> Json {
        match x {
            Some(v) => Json::Num(v),
            None => Json::Null,
        }
    }

    /// Renders the value as pretty-printed JSON (2-space indent, trailing
    /// newline).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => write_number(out, *x),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Formats a finite float for machine-readable exports: integral values
/// within 2^53 (where every integer is exactly representable) print
/// without a fractional part, everything else uses Rust's
/// shortest-roundtrip formatting. Shared by the JSON writer and the CSV
/// report columns so both exports format a given value identically.
pub fn fmt_number(x: f64) -> String {
    if x == x.trunc() && x.abs() < 9_007_199_254_740_992.0 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

fn write_number(out: &mut String, x: f64) {
    if !x.is_finite() {
        // JSON has no NaN/Infinity.
        out.push_str("null");
    } else {
        let _ = write!(out, "{}", fmt_number(x));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Quotes one CSV field per RFC 4180: fields containing commas, quotes or
/// newlines are wrapped in double quotes with embedded quotes doubled.
pub fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structure() {
        let doc = Json::obj([
            ("a", Json::Num(1.5)),
            ("b", Json::Arr(vec![Json::Null, Json::Bool(true)])),
            ("c", Json::obj([("d", Json::str("x"))])),
        ]);
        let text = doc.render();
        assert_eq!(
            text,
            "{\n  \"a\": 1.5,\n  \"b\": [\n    null,\n    true\n  ],\n  \"c\": {\n    \"d\": \"x\"\n  }\n}\n"
        );
    }

    #[test]
    fn integral_floats_print_without_fraction() {
        assert_eq!(Json::Num(1000.0).render(), "1000\n");
        assert_eq!(Json::Num(-3.0).render(), "-3\n");
        assert_eq!(Json::Num(0.25).render(), "0.25\n");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null\n");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null\n");
        assert_eq!(Json::opt_num(None).render(), "null\n");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(Json::str("a\"b\\c\nd").render(), "\"a\\\"b\\\\c\\nd\"\n");
        assert_eq!(Json::str("\u{1}").render(), "\"\\u0001\"\n");
    }

    #[test]
    fn empty_containers_are_compact() {
        assert_eq!(Json::Arr(vec![]).render(), "[]\n");
        assert_eq!(Json::Obj(vec![]).render(), "{}\n");
    }

    #[test]
    fn csv_quoting() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_field("line\nbreak"), "\"line\nbreak\"");
    }
}
