//! Dependency-free structured-result emission: a minimal JSON value tree,
//! CSV field escaping, and a little-endian binary record codec.
//!
//! Campaign reports need to leave the process in a machine-readable form
//! (plots, regression dashboards, spreadsheet imports) without pulling in
//! `serde` — the workspace builds offline with zero external crates. This
//! module provides the formats the scenario engine exports:
//!
//! * [`Json`] — a small JSON value tree with a pretty renderer. Numbers
//!   are `f64` (like JSON itself); non-finite values render as `null`.
//! * [`csv_field`] — RFC-4180 field quoting for the CSV writer.
//! * [`ByteWriter`] / [`ByteReader`] — a fixed little-endian binary codec
//!   for on-disk records (the campaign checkpoint journal). Floats round
//!   trip through their IEEE-754 bits, so a value read back is
//!   bit-identical to the value written — the property the
//!   interrupted-and-resumed ≡ single-shot determinism contract rests on.
//! * [`crc32`] / [`fnv1a_64`] — the record checksum and the stable
//!   content hash those records are keyed by.
//!
//! # Example
//!
//! ```
//! use sim_core::export::Json;
//!
//! let doc = Json::obj([
//!     ("name", Json::str("paper_fig1")),
//!     ("cells", Json::Arr(vec![Json::Num(1.0), Json::Num(3.34)])),
//! ]);
//! let text = doc.render();
//! assert!(text.contains("\"name\": \"paper_fig1\""));
//! assert!(text.contains("3.34"));
//! ```

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number. Non-finite values render as `null` (JSON has no NaN).
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience constructor for an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// An optional number: `None` renders as `null`.
    pub fn opt_num(x: Option<f64>) -> Json {
        match x {
            Some(v) => Json::Num(v),
            None => Json::Null,
        }
    }

    /// Renders the value as pretty-printed JSON (2-space indent, trailing
    /// newline).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => write_number(out, *x),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Formats a finite float for machine-readable exports: integral values
/// within 2^53 (where every integer is exactly representable) print
/// without a fractional part, everything else uses Rust's
/// shortest-roundtrip formatting. Shared by the JSON writer and the CSV
/// report columns so both exports format a given value identically.
pub fn fmt_number(x: f64) -> String {
    if x == x.trunc() && x.abs() < 9_007_199_254_740_992.0 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

fn write_number(out: &mut String, x: f64) {
    if !x.is_finite() {
        // JSON has no NaN/Infinity.
        out.push_str("null");
    } else {
        let _ = write!(out, "{}", fmt_number(x));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Quotes one CSV field per RFC 4180: fields containing commas, quotes or
/// newlines are wrapped in double quotes with embedded quotes doubled.
pub fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) of `bytes` —
/// the per-record checksum of the campaign checkpoint journal. Bitwise
/// (no table): journal records are small and written once per cell, so
/// simplicity beats throughput here.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// FNV-1a 64-bit hash of `bytes` — a stable, dependency-free content
/// hash (the checkpoint journal keys itself to the hash of the canonical
/// scenario text so a journal can never be replayed into a different
/// scenario).
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Builds a little-endian binary record (see the module docs).
///
/// The format is positional: the reader must consume fields in exactly
/// the order the writer emitted them. Strings are length-prefixed UTF-8;
/// options are a one-byte presence flag followed by the value; floats are
/// written as their raw IEEE-754 bits.
#[derive(Debug, Clone, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty record.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, x: u8) {
        self.buf.push(x);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, x: u32) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, x: u64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Appends an `f64` as its raw IEEE-754 bits (exact round trip,
    /// including NaN payloads and signed zeros).
    pub fn f64(&mut self, x: f64) {
        self.u64(x.to_bits());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends an optional `f64` (presence byte + bits).
    pub fn opt_f64(&mut self, x: Option<f64>) {
        match x {
            Some(v) => {
                self.u8(1);
                self.f64(v);
            }
            None => self.u8(0),
        }
    }

    /// Appends a length-prefixed `f64` slice.
    pub fn f64s(&mut self, xs: &[f64]) {
        self.u32(xs.len() as u32);
        for &x in xs {
            self.f64(x);
        }
    }
}

/// Reads a [`ByteWriter`] record back, field by field. Every accessor
/// fails (rather than panics) on a short or malformed buffer, so a
/// corrupted journal record degrades into an error the replay loop can
/// stop on.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Wraps an encoded record.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.remaining() < n {
            return Err(format!(
                "record ends early: wanted {n} more bytes, have {}",
                self.remaining()
            ));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `f64` from its raw bits.
    pub fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "record string is not UTF-8".to_string())
    }

    /// Reads an optional `f64` (presence byte + bits).
    pub fn opt_f64(&mut self) -> Result<Option<f64>, String> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.f64()?)),
            other => Err(format!("bad option flag {other}")),
        }
    }

    /// Reads a length-prefixed `f64` vector.
    pub fn f64s(&mut self) -> Result<Vec<f64>, String> {
        let len = self.u32()? as usize;
        // Sanity-cap before allocating: a corrupted length must not OOM.
        if len > self.remaining() / 8 {
            return Err(format!("record vector length {len} exceeds the record"));
        }
        (0..len).map(|_| self.f64()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structure() {
        let doc = Json::obj([
            ("a", Json::Num(1.5)),
            ("b", Json::Arr(vec![Json::Null, Json::Bool(true)])),
            ("c", Json::obj([("d", Json::str("x"))])),
        ]);
        let text = doc.render();
        assert_eq!(
            text,
            "{\n  \"a\": 1.5,\n  \"b\": [\n    null,\n    true\n  ],\n  \"c\": {\n    \"d\": \"x\"\n  }\n}\n"
        );
    }

    #[test]
    fn integral_floats_print_without_fraction() {
        assert_eq!(Json::Num(1000.0).render(), "1000\n");
        assert_eq!(Json::Num(-3.0).render(), "-3\n");
        assert_eq!(Json::Num(0.25).render(), "0.25\n");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null\n");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null\n");
        assert_eq!(Json::opt_num(None).render(), "null\n");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(Json::str("a\"b\\c\nd").render(), "\"a\\\"b\\\\c\\nd\"\n");
        assert_eq!(Json::str("\u{1}").render(), "\"\\u0001\"\n");
    }

    #[test]
    fn empty_containers_are_compact() {
        assert_eq!(Json::Arr(vec![]).render(), "[]\n");
        assert_eq!(Json::Obj(vec![]).render(), "{}\n");
    }

    #[test]
    fn csv_quoting() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_field("line\nbreak"), "\"line\nbreak\"");
    }

    #[test]
    fn byte_codec_round_trips_every_field_kind() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.f64(-0.0);
        w.f64(f64::NAN);
        w.str("héllo");
        w.opt_f64(None);
        w.opt_f64(Some(1.5e-300));
        w.f64s(&[1.0, 2.5, f64::INFINITY]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.f64().unwrap().is_nan());
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.opt_f64().unwrap(), None);
        assert_eq!(r.opt_f64().unwrap(), Some(1.5e-300));
        assert_eq!(r.f64s().unwrap(), vec![1.0, 2.5, f64::INFINITY]);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn byte_reader_fails_cleanly_on_short_or_corrupt_records() {
        let mut w = ByteWriter::new();
        w.u32(9);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(r.u64().is_err(), "short read must fail, not panic");

        // A huge vector length must be rejected before allocation.
        let mut w = ByteWriter::new();
        w.u32(u32::MAX);
        let bytes = w.into_bytes();
        assert!(ByteReader::new(&bytes).f64s().is_err());

        // A bad option flag is an error.
        let bytes = [2u8];
        assert!(ByteReader::new(&bytes).opt_f64().is_err());
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"abc"), crc32(b"abd"), "single-bit sensitivity");
    }

    #[test]
    fn fnv1a_matches_known_vectors() {
        // Standard FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }
}
