//! Statistics used to aggregate Monte-Carlo campaigns.
//!
//! The evaluation of the paper reports *average execution times over 1,000
//! randomized runs* per configuration (cache placement and arbitration are
//! randomized, so a single run is meaningless). This module provides the
//! aggregation tools: numerically-stable running summaries ([`Summary`]),
//! fixed-width histograms ([`Histogram`]), and exact percentiles over stored
//! samples ([`percentile`]).

use std::fmt;

/// Numerically-stable running summary (Welford's algorithm).
///
/// Tracks count, mean, variance, min and max in O(1) memory. This is the
/// workhorse for campaign aggregation where storing every sample is not
/// needed.
///
/// # Example
///
/// ```
/// use sim_core::stats::Summary;
///
/// let mut s = Summary::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.record(x);
/// }
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_std_dev() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Merges another summary into this one (parallel aggregation).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 if fewer than 1 observation).
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample variance with Bessel's correction (0 if fewer than 2).
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample standard deviation.
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest observation (+inf if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (-inf if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sample_std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Half-width of an approximate 95% confidence interval on the mean
    /// (normal approximation, valid for the hundreds-of-runs campaigns used
    /// here).
    pub fn ci95_half_width(&self) -> f64 {
        1.96 * self.std_error()
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} sd={:.3} min={:.3} max={:.3}",
            self.n,
            self.mean(),
            self.sample_std_dev(),
            self.min,
            self.max
        )
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.record(x);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.record(x);
        }
    }
}

/// Exact percentile over a *sorted* slice using linear interpolation
/// (the "linear" / type-7 estimator, same convention as numpy's default).
///
/// `q` is in `[0, 1]`.
///
/// # Panics
///
/// Panics if `sorted` is empty or `q` is outside `[0, 1]`.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0,1]");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Sorts a copy of `samples` and returns the `q`-quantile.
///
/// NaNs sort after `+inf` (IEEE total order) instead of panicking, so a
/// stray NaN inflates only the top quantiles rather than aborting a
/// whole campaign. Callers evaluating several quantiles of one sample
/// set should sort once and use [`percentile_sorted`] per quantile.
///
/// See [`percentile_sorted`] for conventions and panics.
pub fn percentile(samples: &[f64], q: f64) -> f64 {
    let mut v = samples.to_vec();
    v.sort_by(f64::total_cmp);
    percentile_sorted(&v, q)
}

/// Geometric mean of strictly positive samples.
///
/// # Panics
///
/// Panics if `samples` is empty or any sample is not strictly positive.
pub fn geometric_mean(samples: &[f64]) -> f64 {
    assert!(!samples.is_empty(), "geometric mean of empty slice");
    let log_sum: f64 = samples
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "geometric mean requires positive samples");
            x.ln()
        })
        .sum();
    (log_sum / samples.len() as f64).exp()
}

/// A fixed-width histogram over `[lo, hi)` with under/overflow buckets.
///
/// # Example
///
/// ```
/// use sim_core::stats::Histogram;
///
/// let mut h = Histogram::new(0.0, 100.0, 10).unwrap();
/// h.record(5.0);
/// h.record(15.0);
/// h.record(-3.0); // underflow
/// assert_eq!(h.bucket_count(0), 1);
/// assert_eq!(h.bucket_count(1), 1);
/// assert_eq!(h.underflow(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram of `n_buckets` equal-width buckets over `[lo, hi)`.
    ///
    /// # Errors
    ///
    /// Returns an error if `lo >= hi` or `n_buckets == 0`.
    pub fn new(lo: f64, hi: f64, n_buckets: usize) -> Result<Self, crate::SimError> {
        if lo.partial_cmp(&hi) != Some(std::cmp::Ordering::Less) || n_buckets == 0 {
            return Err(crate::SimError::InvalidConfig {
                what: "histogram",
                why: format!(
                    "need lo < hi and n_buckets > 0 (got lo={lo}, hi={hi}, n={n_buckets})"
                ),
            });
        }
        Ok(Histogram {
            lo,
            hi,
            buckets: vec![0; n_buckets],
            underflow: 0,
            overflow: 0,
        })
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.buckets.len() as f64;
            let idx = ((x - self.lo) / w) as usize;
            let idx = idx.min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
    }

    /// Count in bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Number of buckets.
    pub fn n_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Observations below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations recorded, including under/overflow.
    pub fn total(&self) -> u64 {
        self.underflow + self.overflow + self.buckets.iter().sum::<u64>()
    }

    /// `(low_edge, high_edge)` of bucket `i`.
    pub fn bucket_edges(&self, i: usize) -> (f64, f64) {
        let w = (self.hi - self.lo) / self.buckets.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_matches_textbook_values() {
        let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.population_variance() - 4.0).abs() < 1e-12);
        assert!((s.sample_variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn summary_empty_is_safe() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.std_error(), 0.0);
    }

    #[test]
    fn summary_merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64) * 0.7 - 13.0).collect();
        let seq: Summary = data.iter().copied().collect();
        let mut a: Summary = data[..37].iter().copied().collect();
        let b: Summary = data[37..].iter().copied().collect();
        a.merge(&b);
        assert_eq!(a.count(), seq.count());
        assert!((a.mean() - seq.mean()).abs() < 1e-9);
        assert!((a.sample_variance() - seq.sample_variance()).abs() < 1e-9);
        assert_eq!(a.min(), seq.min());
        assert_eq!(a.max(), seq.max());
    }

    #[test]
    fn summary_merge_with_empty() {
        let mut a: Summary = [1.0, 2.0].into_iter().collect();
        let before = a.clone();
        a.merge(&Summary::new());
        assert_eq!(a, before);
        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 4.0);
        assert!((percentile(&v, 0.5) - 2.5).abs() < 1e-12);
        assert!((percentile(&v, 1.0 / 3.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_single_element() {
        assert_eq!(percentile(&[42.0], 0.7), 42.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        let _ = percentile(&[], 0.5);
    }

    #[test]
    fn percentile_tolerates_nan() {
        // NaN sorts last under total_cmp: low quantiles stay usable,
        // and nothing panics.
        let v = [3.0, f64::NAN, 1.0, 2.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert!((percentile(&v, 1.0 / 3.0) - 2.0).abs() < 1e-12);
        assert!(percentile(&v, 1.0).is_nan());
    }

    #[test]
    fn geometric_mean_basic() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets_and_edges() {
        let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
        for x in [0.0, 1.9, 2.0, 9.99, 10.0, -0.1] {
            h.record(x);
        }
        assert_eq!(h.bucket_count(0), 2);
        assert_eq!(h.bucket_count(1), 1);
        assert_eq!(h.bucket_count(4), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.total(), 6);
        assert_eq!(h.bucket_edges(1), (2.0, 4.0));
    }

    #[test]
    fn histogram_rejects_bad_config() {
        assert!(Histogram::new(1.0, 1.0, 4).is_err());
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(Histogram::new(2.0, 1.0, 4).is_err());
    }
}
