//! Streaming observers: the [`Probe`] API.
//!
//! A [`Probe`] subscribes to the observable events of a simulation run —
//! grants, completions, credit-eligibility flips — without the harness
//! hard-wiring any particular metric. The default subscriber,
//! [`NoProbe`], compiles to nothing: `Probe::ACTIVE` is a const the
//! drive loop branches on, so a run without observers pays zero cost
//! (the calls monomorphize to empty inlined bodies and the event-drain
//! hook is never invoked).
//!
//! Concrete probes live near the types they understand; the platform
//! crate ships a windowed-fairness probe (per-window Jain index and
//! per-core share time series) built on completions.
//!
//! # Event timing under the fast path
//!
//! Grants and completions only ever occur at executed cycles, so probe
//! streams built on them are **bit-identical** between the naive and
//! event-horizon engines. Credit flips forwarded through
//! [`ModelEvent::CreditFlip`] are observed at executed cycles: exact
//! under the naive engine, and coalesced to the skip-resume cycle when
//! the fast path jumps an uneventful range.

use crate::{CoreId, Cycle};

/// An event surfaced by a [`BusModel`](crate::BusModel) through its
/// [`drain_events`](crate::BusModel::drain_events) hook — internal state
/// changes (unlike grants and completions) the drive loop cannot observe
/// from the protocol's return values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelEvent {
    /// A core's arbitration-eligibility verdict flipped (for credit-based
    /// filters: its budget crossed the MaxL threshold, or a WCET-mode
    /// `COMP` bit latched/cleared).
    CreditFlip {
        /// First arbitration cycle at which the new verdict applies.
        at: Cycle,
        /// The core whose verdict flipped.
        core: CoreId,
        /// The new verdict.
        eligible: bool,
    },
}

/// A streaming observer of one simulation run.
///
/// All methods default to no-ops; implement the ones you care about. `C`
/// is the model's completion report type.
pub trait Probe<C> {
    /// Whether this probe observes anything at all. The drive loop skips
    /// event-drain work entirely when `ACTIVE` is `false` (the
    /// [`NoProbe`] default), making an unobserved run zero-cost.
    const ACTIVE: bool = true;

    /// A transaction completed at cycle `now`.
    fn on_completion(&mut self, now: Cycle, completion: &C) {
        let _ = (now, completion);
    }

    /// `core` was granted the interconnect at cycle `now`.
    fn on_grant(&mut self, now: Cycle, core: CoreId) {
        let _ = (now, core);
    }

    /// A credit-eligibility verdict flipped (see
    /// [`ModelEvent::CreditFlip`]).
    fn on_credit_flip(&mut self, at: Cycle, core: CoreId, eligible: bool) {
        let _ = (at, core, eligible);
    }

    /// The run ended after `total_cycles` simulated cycles.
    fn on_finish(&mut self, total_cycles: Cycle) {
        let _ = total_cycles;
    }
}

/// The zero-cost default observer: subscribes to nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoProbe;

impl<C> Probe<C> for NoProbe {
    const ACTIVE: bool = false;
}

/// An optional probe: `None` observes nothing (but, unlike [`NoProbe`],
/// keeps the event plumbing alive — use it when observation is decided
/// at run time, e.g. a per-spec report option).
impl<C, P: Probe<C>> Probe<C> for Option<P> {
    const ACTIVE: bool = P::ACTIVE;

    fn on_completion(&mut self, now: Cycle, completion: &C) {
        if let Some(p) = self {
            p.on_completion(now, completion);
        }
    }

    fn on_grant(&mut self, now: Cycle, core: CoreId) {
        if let Some(p) = self {
            p.on_grant(now, core);
        }
    }

    fn on_credit_flip(&mut self, at: Cycle, core: CoreId, eligible: bool) {
        if let Some(p) = self {
            p.on_credit_flip(at, core, eligible);
        }
    }

    fn on_finish(&mut self, total_cycles: Cycle) {
        if let Some(p) = self {
            p.on_finish(total_cycles);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Counter {
        grants: u64,
        completions: u64,
        flips: u64,
        finished: Option<Cycle>,
    }

    impl Probe<u32> for Counter {
        fn on_completion(&mut self, _now: Cycle, _c: &u32) {
            self.completions += 1;
        }
        fn on_grant(&mut self, _now: Cycle, _core: CoreId) {
            self.grants += 1;
        }
        fn on_credit_flip(&mut self, _at: Cycle, _core: CoreId, _eligible: bool) {
            self.flips += 1;
        }
        fn on_finish(&mut self, total: Cycle) {
            self.finished = Some(total);
        }
    }

    /// Reads `ACTIVE` through the generic machinery, as the drive loop
    /// does (also sidesteps the constant-assertion lint).
    fn active<P: Probe<u32>>(_p: &P) -> bool {
        P::ACTIVE
    }

    #[test]
    fn no_probe_is_inactive() {
        assert!(!active(&NoProbe));
        assert!(active(&Counter::default()));
        assert!(active(&Some(Counter::default())));
        assert!(!active(&Some(NoProbe)));
    }

    #[test]
    fn option_probe_delegates_only_when_some() {
        let mut none: Option<Counter> = None;
        none.on_grant(0, CoreId::from_index(0));
        none.on_finish(5);
        let mut some = Some(Counter::default());
        some.on_grant(0, CoreId::from_index(0));
        some.on_completion(1, &7);
        some.on_credit_flip(2, CoreId::from_index(1), true);
        some.on_finish(10);
        let c = some.unwrap();
        assert_eq!((c.grants, c.completions, c.flips), (1, 1, 1));
        assert_eq!(c.finished, Some(10));
    }
}
