#![doc = include_str!("../README.md")]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bus;
pub mod fabric;
pub mod pending;
pub mod policies;
pub mod policy;
pub mod split;

pub use bus::{Bus, BusConfig, BusState, CompletedTransaction, TickOutcome, WaitStats};
pub use fabric::{Fabric, FabricConfig};
pub use pending::{Candidate, PendingSet};
pub use policy::{
    ArbitrationPolicy, EligibilityFilter, FilterHorizon, NoFilter, PolicyKind, RandomSource,
};
pub use sim_core::{drive, drive_events, BusModel, Control, DriveOutcome};

use sim_core::{CoreId, Cycle};
use std::fmt;

/// Classification of a bus transaction, used for tracing and statistics.
///
/// The durations associated with each kind on the reference platform are
/// defined by the memory model (`cba-mem`); the bus itself only cares about
/// the duration carried by the request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestKind {
    /// Read that hits in the shared L2 (shortest transaction, 5 cycles).
    L2ReadHit,
    /// Write-through store reaching L2 (6 cycles).
    L2Write,
    /// L2 miss with a clean victim: one memory access (28 cycles).
    L2MissClean,
    /// L2 miss evicting a dirty line: write-back + fetch (56 cycles).
    L2MissDirty,
    /// Atomic read-modify-write: two memory accesses, unsplittable
    /// (56 cycles). The paper highlights atomics as the reason very long and
    /// very short requests coexist even on buses with split transactions.
    Atomic,
    /// A WCET-estimation-mode contender transaction (always MaxL cycles).
    Contender,
    /// Synthetic workload transaction (used by the illustrative example and
    /// fairness sweeps).
    Synthetic,
    /// Coherent read (MESI BusRd): fetch a shared-segment line for
    /// reading, leaving remote copies in S.
    CohRead,
    /// Coherent read-exclusive (MESI BusRdX): fetch a line with intent to
    /// write, invalidating every remote copy.
    CohReadEx,
    /// Ownership upgrade (MESI BusUpgr): an S-state holder claims
    /// exclusivity without a data fetch; remote copies invalidate.
    CohUpgrade,
    /// Coherence writeback: a remote M-state copy flushes to memory before
    /// the requester's fetch proceeds (snoop-forced, unlike the
    /// capacity-eviction half of [`RequestKind::L2MissDirty`]).
    CohWriteback,
    /// Invalidation acknowledgement: the snoop round-trip confirming
    /// sibling copies dropped their line.
    CohInvAck,
}

impl fmt::Display for RequestKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RequestKind::L2ReadHit => "l2-read-hit",
            RequestKind::L2Write => "l2-write",
            RequestKind::L2MissClean => "l2-miss-clean",
            RequestKind::L2MissDirty => "l2-miss-dirty",
            RequestKind::Atomic => "atomic",
            RequestKind::Contender => "contender",
            RequestKind::Synthetic => "synthetic",
            RequestKind::CohRead => "coh-read",
            RequestKind::CohReadEx => "coh-readex",
            RequestKind::CohUpgrade => "coh-upgrade",
            RequestKind::CohWriteback => "coh-writeback",
            RequestKind::CohInvAck => "coh-invack",
        };
        f.write_str(s)
    }
}

/// One bus transaction request: a core asking to hold the bus for
/// `duration` cycles.
///
/// Durations are validated against 1..= [`BusRequest::MAX_DURATION`] at
/// construction and against the platform's `max_latency` when posted to a
/// [`Bus`]. A request whose duration could exceed the platform MaxL would
/// break the credit-arbitration invariants, so this is enforced, not
/// assumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusRequest {
    core: CoreId,
    duration: u32,
    kind: RequestKind,
    issued_at: Cycle,
}

impl BusRequest {
    /// Upper bound on any transaction duration accepted by the model.
    pub const MAX_DURATION: u32 = 4096;

    /// Creates a request by `core` to hold the bus for `duration` cycles,
    /// issued (became ready) at cycle `issued_at`.
    ///
    /// # Errors
    ///
    /// Returns [`BusError::DurationOutOfRange`] unless
    /// `1 <= duration <= MAX_DURATION`.
    pub fn new(
        core: CoreId,
        duration: u32,
        kind: RequestKind,
        issued_at: Cycle,
    ) -> Result<Self, BusError> {
        if duration == 0 || duration > Self::MAX_DURATION {
            return Err(BusError::DurationOutOfRange {
                got: duration,
                max: Self::MAX_DURATION,
            });
        }
        Ok(BusRequest {
            core,
            duration,
            kind,
            issued_at,
        })
    }

    /// The requesting core.
    pub fn core(&self) -> CoreId {
        self.core
    }

    /// Bus hold time in cycles.
    pub fn duration(&self) -> u32 {
        self.duration
    }

    /// Transaction classification.
    pub fn kind(&self) -> RequestKind {
        self.kind
    }

    /// Cycle at which the request became ready.
    pub fn issued_at(&self) -> Cycle {
        self.issued_at
    }
}

/// Errors reported by the bus model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BusError {
    /// A request's duration was zero or above the accepted maximum.
    DurationOutOfRange {
        /// Rejected duration.
        got: u32,
        /// Largest accepted duration.
        max: u32,
    },
    /// The core already has a pending (not yet granted) request; cores are
    /// in-order and blocking, so a second outstanding request is a caller
    /// bug.
    AlreadyPending(CoreId),
    /// The request names a core outside the platform.
    UnknownCore(CoreId),
    /// The configuration was rejected (core count or MaxL out of domain).
    InvalidConfig(String),
}

impl fmt::Display for BusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusError::DurationOutOfRange { got, max } => {
                write!(f, "request duration {got} outside 1..={max}")
            }
            BusError::AlreadyPending(core) => {
                write!(f, "{core} already has a pending bus request")
            }
            BusError::UnknownCore(core) => write!(f, "{core} is not part of this platform"),
            BusError::InvalidConfig(why) => write!(f, "invalid bus configuration: {why}"),
        }
    }
}

impl std::error::Error for BusError {}

/// The client-side request port shared by every interconnect variant that
/// addresses requests by [`CoreId`] — the flat [`Bus`] and the hierarchical
/// [`Fabric`].
///
/// Client models (cores, contenders, fixed-request tasks) are written
/// against this trait so the *same* client drives a single shared bus or a
/// clustered fabric unchanged; only the interconnect behind the port
/// differs. The port is intentionally narrower than [`BusModel`]: clients
/// post, probe whether they may post, and withdraw — they never drive
/// cycles.
pub trait RequestPort {
    /// Posts a bus request (phase 2 of the cycle protocol).
    ///
    /// # Errors
    ///
    /// Implementations reject unknown cores, out-of-range durations and
    /// double posts (see [`BusError`]).
    fn post(&mut self, req: BusRequest) -> Result<(), BusError>;

    /// Withdraws `core`'s pending request if it has not been granted yet
    /// (on a fabric: if it has not left its cluster's pending set).
    fn withdraw(&mut self, core: CoreId) -> Option<BusRequest>;

    /// Whether `core` may post a fresh request: nothing of its is pending,
    /// in service, or (on a fabric) anywhere in the bridge pipeline.
    fn can_accept(&self, core: CoreId) -> bool;
}

impl RequestPort for Bus {
    fn post(&mut self, req: BusRequest) -> Result<(), BusError> {
        Bus::post(self, req)
    }

    fn withdraw(&mut self, core: CoreId) -> Option<BusRequest> {
        Bus::withdraw(self, core)
    }

    fn can_accept(&self, core: CoreId) -> bool {
        !self.has_pending(core) && self.owner() != Some(core)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_validates_duration() {
        let c = CoreId::from_index(0);
        assert!(matches!(
            BusRequest::new(c, 0, RequestKind::L2ReadHit, 0),
            Err(BusError::DurationOutOfRange { got: 0, .. })
        ));
        assert!(BusRequest::new(c, 1, RequestKind::L2ReadHit, 0).is_ok());
        assert!(BusRequest::new(c, BusRequest::MAX_DURATION, RequestKind::Atomic, 0).is_ok());
        assert!(BusRequest::new(c, BusRequest::MAX_DURATION + 1, RequestKind::Atomic, 0).is_err());
    }

    #[test]
    fn request_accessors() {
        let c = CoreId::from_index(2);
        let r = BusRequest::new(c, 28, RequestKind::L2MissClean, 17).unwrap();
        assert_eq!(r.core(), c);
        assert_eq!(r.duration(), 28);
        assert_eq!(r.kind(), RequestKind::L2MissClean);
        assert_eq!(r.issued_at(), 17);
    }

    #[test]
    fn kinds_display_distinctly() {
        use std::collections::HashSet;
        let kinds = [
            RequestKind::L2ReadHit,
            RequestKind::L2Write,
            RequestKind::L2MissClean,
            RequestKind::L2MissDirty,
            RequestKind::Atomic,
            RequestKind::Contender,
            RequestKind::Synthetic,
            RequestKind::CohRead,
            RequestKind::CohReadEx,
            RequestKind::CohUpgrade,
            RequestKind::CohWriteback,
            RequestKind::CohInvAck,
        ];
        let names: HashSet<String> = kinds.iter().map(|k| k.to_string()).collect();
        assert_eq!(names.len(), kinds.len());
    }

    #[test]
    fn errors_display() {
        let e = BusError::AlreadyPending(CoreId::from_index(1));
        assert!(e.to_string().contains("core1"));
        let e = BusError::DurationOutOfRange { got: 0, max: 56 };
        assert!(e.to_string().contains("0"));
    }
}
