//! The cycle-accurate non-split bus.
//!
//! # Cycle protocol
//!
//! The bus advances in two phases per cycle, so that a core whose
//! transaction completes at cycle `t` can post its next request *within*
//! cycle `t` and be re-arbitrated immediately (back-to-back transactions,
//! as on the FPGA where the request lines are already raised when a
//! transfer ends):
//!
//! 1. [`Bus::begin_cycle`]`(t)` — a transaction ending at `t` completes and
//!    is reported;
//! 2. clients post requests for cycle `t` via [`Bus::post`];
//! 3. [`Bus::end_cycle`]`(t)` — if the bus is free, the eligibility filter
//!    and arbitration policy pick a winner, which then holds the bus for
//!    cycles `[t, t + duration)`; finally the filter's per-cycle state
//!    (credit counters) advances.
//!
//! [`BusModel::tick`](sim_core::BusModel::tick) bundles both phases for
//! simple clients that post between ticks.

use crate::pending::{Candidate, PendingSet};
use crate::policy::{ArbitrationPolicy, EligibilityFilter, NoFilter, RandomSource};
use crate::{BusError, BusRequest, RequestKind};
use sim_core::rng::SimRng;
use sim_core::trace::GrantTrace;
use sim_core::{CoreId, Cycle};
use std::collections::VecDeque;

/// Static configuration of a bus instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusConfig {
    n_cores: usize,
    max_latency: u32,
}

impl BusConfig {
    /// Creates a configuration for `n_cores` contenders whose longest
    /// transaction (MaxL) is `max_latency` cycles.
    ///
    /// # Errors
    ///
    /// Returns [`BusError::InvalidConfig`] if `n_cores` is 0 or above
    /// [`CoreId::MAX_CORES`], or if `max_latency` is 0 or above
    /// [`BusRequest::MAX_DURATION`].
    pub fn new(n_cores: usize, max_latency: u32) -> Result<Self, BusError> {
        if n_cores == 0 || n_cores > CoreId::MAX_CORES {
            return Err(BusError::InvalidConfig(format!(
                "n_cores must be in 1..={}, got {n_cores}",
                CoreId::MAX_CORES
            )));
        }
        if max_latency == 0 || max_latency > BusRequest::MAX_DURATION {
            return Err(BusError::InvalidConfig(format!(
                "max_latency must be in 1..={}, got {max_latency}",
                BusRequest::MAX_DURATION
            )));
        }
        Ok(BusConfig {
            n_cores,
            max_latency,
        })
    }

    /// Number of contenders.
    pub fn n_cores(&self) -> usize {
        self.n_cores
    }

    /// MaxL: the longest transaction duration the bus accepts.
    pub fn max_latency(&self) -> u32 {
        self.max_latency
    }
}

/// Occupancy state of the bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusState {
    /// No transaction in flight.
    Idle,
    /// A non-split transaction holds the bus for cycles
    /// `[started, ends_at)`.
    Busy {
        /// Core holding the bus.
        owner: CoreId,
        /// First cycle of the transaction.
        started: Cycle,
        /// First cycle *after* the transaction.
        ends_at: Cycle,
        /// Transaction classification (for the completion report).
        kind: RequestKind,
    },
}

/// Completion report returned by [`Bus::begin_cycle`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletedTransaction {
    /// Core whose transaction finished.
    pub core: CoreId,
    /// Classification of the finished transaction.
    pub kind: RequestKind,
    /// Its duration in cycles.
    pub duration: u32,
}

/// Combined result of one [`BusModel::tick`](sim_core::BusModel::tick) on a
/// [`Bus`].
pub type TickOutcome = sim_core::TickOutcome<CompletedTransaction>;

/// Per-core request waiting-time statistics (request-ready to grant).
#[derive(Debug, Clone, Default)]
pub struct WaitStats {
    granted: Vec<u64>,
    total_wait: Vec<u64>,
    max_wait: Vec<u64>,
}

impl WaitStats {
    fn new(n_cores: usize) -> Self {
        WaitStats {
            granted: vec![0; n_cores],
            total_wait: vec![0; n_cores],
            max_wait: vec![0; n_cores],
        }
    }

    fn record(&mut self, core: CoreId, wait: Cycle) {
        let i = core.index();
        self.granted[i] += 1;
        self.total_wait[i] += wait;
        self.max_wait[i] = self.max_wait[i].max(wait);
    }

    fn reset(&mut self) {
        self.granted.iter_mut().for_each(|x| *x = 0);
        self.total_wait.iter_mut().for_each(|x| *x = 0);
        self.max_wait.iter_mut().for_each(|x| *x = 0);
    }

    /// Requests granted to `core`.
    pub fn granted(&self, core: CoreId) -> u64 {
        self.granted[core.index()]
    }

    /// Mean grant latency of `core` in cycles (0 if no grants).
    pub fn mean_wait(&self, core: CoreId) -> f64 {
        let i = core.index();
        if self.granted[i] == 0 {
            0.0
        } else {
            self.total_wait[i] as f64 / self.granted[i] as f64
        }
    }

    /// Worst observed grant latency of `core` in cycles.
    pub fn max_wait(&self, core: CoreId) -> u64 {
        self.max_wait[core.index()]
    }
}

/// The shared non-split bus: pending slots, eligibility filter, arbitration
/// policy, occupancy state and statistics.
///
/// See the [module documentation](self) for the cycle protocol and the
/// [crate documentation](crate) for a usage example.
#[derive(Debug)]
pub struct Bus {
    config: BusConfig,
    state: BusState,
    pending: PendingSet,
    policy: Box<dyn ArbitrationPolicy>,
    filter: Box<dyn EligibilityFilter>,
    rng: Box<dyn RandomSource>,
    trace: GrantTrace,
    wait: WaitStats,
    idle_cycles: u64,
    total_cycles: u64,
    scratch: Vec<Candidate>,
    privileged: VecDeque<BusRequest>,
    in_cycle: bool,
    last_cycle: Option<Cycle>,
    flip_watch: Option<FlipWatch>,
}

/// Observer state for credit-eligibility flips: the last verdict seen
/// per core and the buffered flip events awaiting a drain (see
/// [`Bus::enable_flip_probe`]).
#[derive(Debug)]
struct FlipWatch {
    last: Vec<bool>,
    events: Vec<(Cycle, CoreId, bool)>,
}

impl FlipWatch {
    /// Upper bound on buffered, undrained flips. A drained-per-cycle
    /// buffer (the `Simulation` loop with an active probe) holds at most
    /// `n_cores` entries; the cap only matters when flip probing is
    /// enabled but nothing drains, where the **oldest** flips are
    /// discarded so memory stays bounded over arbitrarily long runs.
    const MAX_BUFFERED: usize = 1 << 16;

    fn push(&mut self, event: (Cycle, CoreId, bool)) {
        if self.events.len() >= Self::MAX_BUFFERED {
            self.events.drain(..Self::MAX_BUFFERED / 2);
        }
        self.events.push(event);
    }
}

impl Bus {
    /// Creates a bus with the given arbitration policy, no eligibility
    /// filter, a deterministic default random source (seed 0) and a
    /// counting-only grant trace.
    pub fn new(config: BusConfig, policy: Box<dyn ArbitrationPolicy>) -> Self {
        Bus {
            state: BusState::Idle,
            pending: PendingSet::new(config.n_cores),
            policy,
            filter: Box::new(NoFilter::new()),
            rng: Box::new(SimRng::seed_from(0)),
            trace: GrantTrace::counting(config.n_cores),
            wait: WaitStats::new(config.n_cores),
            idle_cycles: 0,
            total_cycles: 0,
            scratch: Vec::with_capacity(config.n_cores),
            privileged: VecDeque::new(),
            in_cycle: false,
            last_cycle: None,
            flip_watch: None,
            config,
        }
    }

    /// Replaces the eligibility filter (e.g. with a CBA credit filter).
    pub fn set_filter(&mut self, filter: Box<dyn EligibilityFilter>) {
        self.filter = filter;
        if self.flip_watch.is_some() {
            // Re-baseline the flip watcher against the new filter.
            self.enable_flip_probe();
        }
    }

    /// Starts watching the eligibility filter for verdict flips, to be
    /// streamed through [`BusModel::drain_events`](
    /// sim_core::BusModel::drain_events) as
    /// [`ModelEvent::CreditFlip`](sim_core::ModelEvent)s. Off by default
    /// (and then completely free); when enabled, every executed cycle
    /// diffs each core's verdict after the filter tick.
    ///
    /// Flips are exact under the naive engine; under the event-horizon
    /// engine, flips inside a skipped range are coalesced to the
    /// skip-resume cycle. The buffer is bounded: if flips are never
    /// drained, the oldest are discarded past ~65k entries — drain every
    /// executed cycle (as the `Simulation` loop does when an active
    /// probe is attached) to observe the complete stream.
    pub fn enable_flip_probe(&mut self) {
        let at = self.last_cycle.map_or(0, |t| t + 1);
        let last: Vec<bool> = (0..self.config.n_cores)
            .map(|i| self.filter.is_eligible(CoreId::from_index(i), at))
            .collect();
        match &mut self.flip_watch {
            // Already watching (filter swap / reset): re-baseline the
            // verdicts but keep any buffered, not-yet-drained events.
            Some(watch) => watch.last = last,
            None => {
                self.flip_watch = Some(FlipWatch {
                    last,
                    events: Vec::new(),
                })
            }
        }
    }

    /// Diffs every core's eligibility verdict for arbitration cycle `at`
    /// against the watcher's baseline, buffering the flips.
    fn record_flips(&mut self, at: Cycle) {
        if let Some(watch) = &mut self.flip_watch {
            for i in 0..watch.last.len() {
                let core = CoreId::from_index(i);
                let eligible = self.filter.is_eligible(core, at);
                if eligible != watch.last[i] {
                    watch.last[i] = eligible;
                    watch.push((at, core, eligible));
                }
            }
        }
    }

    /// Replaces the random-bit source used by randomized policies.
    pub fn set_random_source(&mut self, rng: Box<dyn RandomSource>) {
        self.rng = rng;
    }

    /// Switches to a full recording trace (stores every grant).
    pub fn enable_recording_trace(&mut self) {
        self.trace = GrantTrace::recording(self.config.n_cores);
    }

    /// The static configuration.
    pub fn config(&self) -> &BusConfig {
        &self.config
    }

    /// Current occupancy state.
    pub fn state(&self) -> BusState {
        self.state
    }

    /// The core currently holding the bus, if any.
    pub fn owner(&self) -> Option<CoreId> {
        match self.state {
            BusState::Busy { owner, .. } => Some(owner),
            BusState::Idle => None,
        }
    }

    /// Whether `core` has a posted, not-yet-granted request.
    pub fn has_pending(&self, core: CoreId) -> bool {
        self.pending.contains(core)
    }

    /// Number of posted, not-yet-granted requests.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// The grant trace accumulated so far.
    pub fn trace(&self) -> &GrantTrace {
        &self.trace
    }

    /// Grant-latency statistics accumulated so far.
    pub fn wait_stats(&self) -> &WaitStats {
        &self.wait
    }

    /// Cycles (among those ticked) in which the bus carried no transaction.
    pub fn idle_cycles(&self) -> u64 {
        self.idle_cycles
    }

    /// Total cycles ticked.
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles
    }

    /// The arbitration policy's report name (e.g. "RP").
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// The eligibility filter's report name (e.g. "CBA").
    pub fn filter_name(&self) -> &'static str {
        self.filter.name()
    }

    /// Posts a bus request (phase 2 of the cycle protocol).
    ///
    /// # Errors
    ///
    /// * [`BusError::UnknownCore`] — request core outside the platform;
    /// * [`BusError::DurationOutOfRange`] — duration above the platform
    ///   MaxL (the credit mechanism requires `duration <= MaxL`);
    /// * [`BusError::AlreadyPending`] — the core already has a pending
    ///   request.
    pub fn post(&mut self, req: BusRequest) -> Result<(), BusError> {
        if req.core().index() >= self.config.n_cores {
            return Err(BusError::UnknownCore(req.core()));
        }
        if req.duration() > self.config.max_latency {
            return Err(BusError::DurationOutOfRange {
                got: req.duration(),
                max: self.config.max_latency,
            });
        }
        self.pending.insert(req)
    }

    /// Withdraws the pending request of `core`, if any (used by
    /// WCET-estimation contender models when their compete window closes).
    pub fn withdraw(&mut self, core: CoreId) -> Option<BusRequest> {
        self.pending.remove(core)
    }

    /// Posts a **privileged** request: served FIFO before any arbitrated
    /// request, bypassing both the eligibility filter and the policy.
    ///
    /// This models transfers that have already won arbitration earlier and
    /// hold a reservation — on a split-transaction bus, the response phase
    /// of a split transfer. The grant still occupies the bus, appears in
    /// the trace and drains the owner's credit budget; it just cannot be
    /// vetoed or reordered. Use sparingly: ordinary traffic belongs in
    /// [`Bus::post`].
    ///
    /// # Errors
    ///
    /// Returns the same validation errors as [`Bus::post`]; multiple
    /// privileged requests (even per core) are allowed and served in FIFO
    /// order.
    pub fn post_privileged(&mut self, req: BusRequest) -> Result<(), BusError> {
        if req.core().index() >= self.config.n_cores {
            return Err(BusError::UnknownCore(req.core()));
        }
        if req.duration() > self.config.max_latency {
            return Err(BusError::DurationOutOfRange {
                got: req.duration(),
                max: self.config.max_latency,
            });
        }
        self.privileged.push_back(req);
        Ok(())
    }

    /// Phase 1 of cycle `now`: reports a transaction ending at `now`.
    ///
    /// # Panics
    ///
    /// Panics if cycles are not visited in strictly increasing order or if
    /// the phases are called out of order.
    pub fn begin_cycle(&mut self, now: Cycle) -> Option<CompletedTransaction> {
        assert!(!self.in_cycle, "begin_cycle called twice for one cycle");
        if let Some(last) = self.last_cycle {
            assert!(
                now > last,
                "cycles must strictly increase ({last} -> {now})"
            );
        }
        self.in_cycle = true;
        self.last_cycle = Some(now);
        if let BusState::Busy {
            owner,
            started,
            ends_at,
            kind,
        } = self.state
        {
            if now >= ends_at {
                self.state = BusState::Idle;
                return Some(CompletedTransaction {
                    core: owner,
                    kind,
                    duration: (ends_at - started) as u32,
                });
            }
        }
        None
    }

    /// Phase 3 of cycle `now`: arbitration (if the bus is free) and filter
    /// bookkeeping. Returns the granted core, if any.
    ///
    /// # Panics
    ///
    /// Panics if called without a matching [`Bus::begin_cycle`].
    pub fn end_cycle(&mut self, now: Cycle) -> Option<CoreId> {
        self.end_cycle_gated(now, true)
    }

    /// [`Bus::end_cycle`] with an external grant gate: with
    /// `allow_grant == false` no transaction (privileged or arbitrated) may
    /// *start* this cycle, while completion, idle accounting and filter
    /// state advance exactly as usual.
    ///
    /// This is the backpressure hook of the hierarchical fabric
    /// ([`crate::fabric`]): a cluster bus must not begin a transfer whose
    /// completion would overflow its bridge's bounded request queue, and
    /// from the bus's own perspective a gated cycle is indistinguishable
    /// from a cycle with no eligible candidate.
    ///
    /// # Panics
    ///
    /// Panics if called without a matching [`Bus::begin_cycle`].
    pub fn end_cycle_gated(&mut self, now: Cycle, allow_grant: bool) -> Option<CoreId> {
        assert!(self.in_cycle, "end_cycle without begin_cycle");
        assert_eq!(
            self.last_cycle,
            Some(now),
            "end_cycle for a different cycle"
        );
        self.in_cycle = false;
        self.total_cycles += 1;

        let mut granted = None;
        if allow_grant && matches!(self.state, BusState::Idle) {
            // Privileged reservations (split-transaction response phases)
            // are served FIFO ahead of arbitration; otherwise the filter
            // and the policy pick among the pending requests.
            if let Some(req) = self.privileged.pop_front() {
                self.grant(req, now);
                granted = Some(req.core());
            } else {
                self.pending.candidates_into(&mut self.scratch);
                let filter = &self.filter;
                self.scratch.retain(|c| filter.is_eligible(c.core, now));
                if let Some(winner) = self.policy.select(&self.scratch, now, self.rng.as_mut()) {
                    let req = self
                        .pending
                        .remove(winner)
                        .expect("policy selected a core that is not pending");
                    self.grant(req, now);
                    self.policy.on_grant(winner, now);
                    granted = Some(winner);
                }
            }
        }

        let owner_now = self.owner();
        if owner_now.is_none() {
            self.idle_cycles += 1;
        }
        self.filter.tick(now, owner_now, &self.pending);
        if self.flip_watch.is_some() {
            self.record_flips(now + 1);
        }
        granted
    }

    /// Occupies the bus with `req` from cycle `now` and records the grant.
    fn grant(&mut self, req: BusRequest, now: Cycle) {
        self.state = BusState::Busy {
            owner: req.core(),
            started: now,
            ends_at: now + req.duration() as Cycle,
            kind: req.kind(),
        };
        self.trace.record(now, req.core(), req.duration());
        self.wait
            .record(req.core(), now.saturating_sub(req.issued_at()));
        self.filter.on_grant(req.core(), req.duration(), now);
    }

    /// The bus's event horizon for the fast-forward engine (see
    /// [`BusModel::next_event`](sim_core::BusModel::next_event) for the
    /// contract): assuming no client interaction,
    ///
    /// * a busy bus is silent until the in-flight transaction's `ends_at`;
    /// * an idle bus with a privileged reservation grants next cycle;
    /// * an idle bus with pending requests can only grant when the filter
    ///   flips a verdict or the policy opens a window (TDMA slot start) —
    ///   both reported by their event hooks, either of which can decline
    ///   (`None` here = step per cycle);
    /// * an idle, empty bus has no event at all (`Cycle::MAX`): credits
    ///   just recover, in closed form, inside [`Bus::advance`].
    pub fn next_event(&mut self, now: Cycle) -> Option<Cycle> {
        match self.state {
            BusState::Busy { ends_at, .. } => Some(ends_at),
            BusState::Idle => {
                if !self.privileged.is_empty() {
                    return Some(now + 1);
                }
                if self.pending.is_empty() {
                    return Some(Cycle::MAX);
                }
                // Which pending requests would pass the filter at the next
                // arbitration (cycle now + 1, i.e. after this cycle's
                // filter tick)?
                self.pending.candidates_into(&mut self.scratch);
                let filter = &self.filter;
                self.scratch.retain(|c| filter.is_eligible(c.core, now + 1));
                if !self.scratch.is_empty() && self.policy.is_work_conserving() {
                    // A work-conserving policy grants as soon as it sees an
                    // eligible candidate: no skipping.
                    return Some(now + 1);
                }
                let flip = match self.filter.next_eligibility_flip(now, &self.pending) {
                    crate::policy::FilterHorizon::Unknown => return None,
                    crate::policy::FilterHorizon::Static => Cycle::MAX,
                    crate::policy::FilterHorizon::At(t) => t,
                };
                let window = if self.scratch.is_empty() {
                    // Nobody to grant until a verdict flips.
                    Cycle::MAX
                } else {
                    // Non-work-conserving policy (TDMA): its next window
                    // over the frozen eligible set, if it can predict one.
                    self.policy.next_grant_at(&self.scratch, now)?
                };
                Some(flip.min(window))
            }
        }
    }

    /// Bulk-advances the uneventful cycles `from + 1 ..= to - 1` (see
    /// [`BusModel::advance`](sim_core::BusModel::advance)): cycle counters
    /// accumulate, the filter state evolves under fixed occupancy, and the
    /// monotonic-cycle cursor moves so the next [`Bus::begin_cycle`]`(to)`
    /// is accepted. Grants, completions and RNG draws cannot occur in such
    /// a range by the [`Bus::next_event`] contract, so traces and wait
    /// statistics are untouched.
    pub fn advance(&mut self, from: Cycle, to: Cycle) {
        debug_assert!(!self.in_cycle, "advance between cycles only");
        let k = (to - from).saturating_sub(1);
        if k == 0 {
            return;
        }
        let owner = self.owner();
        self.total_cycles += k;
        if owner.is_none() {
            self.idle_cycles += k;
        }
        self.filter.advance(from + 1, k, owner, &self.pending);
        self.last_cycle = Some(to - 1);
        if self.flip_watch.is_some() {
            // Flips inside the skipped range coalesce to the resume cycle.
            self.record_flips(to);
        }
    }

    /// Resets the bus (state, pending requests, statistics, policy and
    /// filter state) for a fresh run, reusing the trace and statistics
    /// buffers instead of reallocating them. The random source is *not*
    /// reseeded — replace it via [`Bus::set_random_source`] for seed
    /// control.
    pub fn reset(&mut self) {
        self.state = BusState::Idle;
        self.pending.clear();
        self.privileged.clear();
        self.policy.reset();
        self.filter.reset();
        self.trace.clear();
        self.wait.reset();
        self.idle_cycles = 0;
        self.total_cycles = 0;
        self.in_cycle = false;
        self.last_cycle = None;
        if let Some(watch) = &mut self.flip_watch {
            // Stale events belong to the finished run; re-baseline
            // against the freshly reset filter.
            watch.events.clear();
            self.enable_flip_probe();
        }
    }
}

/// The non-split bus speaks the workspace-wide cycle protocol directly:
/// requests carry their own [`CoreId`], completions are
/// [`CompletedTransaction`]s.
impl sim_core::BusModel for Bus {
    type Request = BusRequest;
    type Completion = CompletedTransaction;
    type Error = BusError;

    fn begin_cycle(&mut self, now: Cycle) -> Option<CompletedTransaction> {
        Bus::begin_cycle(self, now)
    }

    fn post(&mut self, req: BusRequest) -> Result<(), BusError> {
        Bus::post(self, req)
    }

    fn end_cycle(&mut self, now: Cycle) -> Option<CoreId> {
        Bus::end_cycle(self, now)
    }

    fn owner(&self) -> Option<CoreId> {
        Bus::owner(self)
    }

    fn trace(&self) -> &GrantTrace {
        Bus::trace(self)
    }

    fn next_event(&mut self, now: Cycle) -> Option<Cycle> {
        Bus::next_event(self, now)
    }

    fn advance(&mut self, from: Cycle, to: Cycle) {
        Bus::advance(self, from, to)
    }

    fn drain_events(&mut self, sink: &mut dyn FnMut(sim_core::ModelEvent)) {
        if let Some(watch) = &mut self.flip_watch {
            for (at, core, eligible) in watch.events.drain(..) {
                sink(sim_core::ModelEvent::CreditFlip { at, core, eligible });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::{RoundRobin, Tdma};
    use crate::policy::EligibilityFilter;
    use sim_core::BusModel;

    fn c(i: usize) -> CoreId {
        CoreId::from_index(i)
    }

    fn req(core: usize, dur: u32, at: Cycle) -> BusRequest {
        BusRequest::new(c(core), dur, RequestKind::Synthetic, at).unwrap()
    }

    fn rr_bus(n: usize) -> Bus {
        Bus::new(BusConfig::new(n, 56).unwrap(), Box::new(RoundRobin::new(n)))
    }

    #[test]
    fn config_validation() {
        assert!(BusConfig::new(0, 56).is_err());
        assert!(BusConfig::new(4, 0).is_err());
        assert!(BusConfig::new(65, 56).is_err());
        assert!(BusConfig::new(4, BusRequest::MAX_DURATION + 1).is_err());
        let ok = BusConfig::new(4, 56).unwrap();
        assert_eq!(ok.n_cores(), 4);
        assert_eq!(ok.max_latency(), 56);
    }

    #[test]
    fn single_request_lifecycle() {
        let mut bus = rr_bus(2);
        bus.post(req(0, 5, 0)).unwrap();
        let out = bus.tick(0);
        assert_eq!(out.granted, Some(c(0)));
        assert_eq!(bus.owner(), Some(c(0)));
        for now in 1..5 {
            let out = bus.tick(now);
            assert_eq!(out.completed, None);
            assert_eq!(bus.owner(), Some(c(0)));
        }
        let out = bus.tick(5);
        assert_eq!(
            out.completed,
            Some(CompletedTransaction {
                core: c(0),
                kind: RequestKind::Synthetic,
                duration: 5
            })
        );
        assert_eq!(bus.owner(), None);
    }

    #[test]
    fn post_validation() {
        let mut bus = rr_bus(2);
        // duration above platform MaxL rejected even though BusRequest
        // itself allows it
        let too_long = BusRequest::new(c(0), 57, RequestKind::Atomic, 0).unwrap();
        assert!(matches!(
            bus.post(too_long),
            Err(BusError::DurationOutOfRange { got: 57, max: 56 })
        ));
        // unknown core
        let stranger = BusRequest::new(c(3), 5, RequestKind::Synthetic, 0).unwrap();
        assert!(matches!(bus.post(stranger), Err(BusError::UnknownCore(_))));
        // double post
        bus.post(req(0, 5, 0)).unwrap();
        assert!(matches!(
            bus.post(req(0, 5, 0)),
            Err(BusError::AlreadyPending(_))
        ));
    }

    #[test]
    fn back_to_back_grants_with_two_phase_protocol() {
        let mut bus = rr_bus(2);
        bus.post(req(0, 5, 0)).unwrap();
        bus.begin_cycle(0);
        assert_eq!(bus.end_cycle(0), Some(c(0)));
        for now in 1..5 {
            bus.begin_cycle(now);
            assert_eq!(bus.end_cycle(now), None);
        }
        // At completion cycle 5, a new request posted in phase 2 is granted
        // the same cycle: zero idle cycles between transactions.
        let done = bus.begin_cycle(5);
        assert_eq!(done.unwrap().core, c(0));
        bus.post(req(1, 5, 5)).unwrap();
        assert_eq!(bus.end_cycle(5), Some(c(1)));
        assert_eq!(bus.idle_cycles(), 0);
    }

    #[test]
    fn saturating_cores_produce_zero_idle_cycles() {
        let mut bus = rr_bus(2);
        let mut completed = 0;
        for now in 0..1000u64 {
            bus.begin_cycle(now);
            for i in 0..2 {
                if !bus.has_pending(c(i)) && bus.owner() != Some(c(i)) {
                    bus.post(req(i, if i == 0 { 5 } else { 45 }, now)).unwrap();
                }
            }
            if bus.end_cycle(now).is_some() {
                completed += 1;
            }
        }
        assert!(completed > 20);
        assert_eq!(bus.idle_cycles(), 0);
        assert_eq!(bus.total_cycles(), 1000);
    }

    #[test]
    fn wait_stats_account_grant_latency() {
        let mut bus = rr_bus(2);
        bus.post(req(0, 10, 0)).unwrap();
        bus.post(req(1, 5, 0)).unwrap();
        bus.tick(0); // grants core 0 (RR cursor at 0)
        for now in 1..=10 {
            bus.tick(now);
        } // completion at 10 grants core 1, which waited 10 cycles
        assert_eq!(bus.wait_stats().granted(c(0)), 1);
        assert_eq!(bus.wait_stats().mean_wait(c(0)), 0.0);
        assert_eq!(bus.wait_stats().granted(c(1)), 1);
        assert_eq!(bus.wait_stats().mean_wait(c(1)), 10.0);
        assert_eq!(bus.wait_stats().max_wait(c(1)), 10);
    }

    /// A filter that permanently vetoes one core (to test the filter hook).
    #[derive(Debug)]
    struct Veto(CoreId);

    impl EligibilityFilter for Veto {
        fn name(&self) -> &'static str {
            "veto"
        }
        fn is_eligible(&self, core: CoreId, _now: Cycle) -> bool {
            core != self.0
        }
    }

    #[test]
    fn filter_vetoes_candidates() {
        let mut bus = rr_bus(2);
        bus.set_filter(Box::new(Veto(c(0))));
        bus.post(req(0, 5, 0)).unwrap();
        bus.post(req(1, 5, 0)).unwrap();
        // RR would prefer core 0, but the filter blocks it.
        assert_eq!(bus.tick(0).granted, Some(c(1)));
        // Core 0 stays pending forever under this (pathological) filter.
        for now in 1..50 {
            bus.tick(now);
        }
        assert!(bus.has_pending(c(0)));
        assert_eq!(bus.trace().slots(c(0)), 0);
    }

    #[test]
    fn tdma_keeps_bus_idle_mid_slot() {
        let config = BusConfig::new(2, 10).unwrap();
        let mut bus = Bus::new(config, Box::new(Tdma::new(2, 10)));
        // Request from core 1 arrives during core 0's slot; it must wait
        // for cycle 10 (its own slot start).
        bus.post(req(1, 5, 0)).unwrap();
        for now in 0..10u64 {
            assert_eq!(bus.tick(now).granted, None, "granted at {now}");
        }
        assert_eq!(bus.tick(10).granted, Some(c(1)));
        assert_eq!(bus.idle_cycles(), 10);
    }

    #[test]
    fn withdraw_removes_pending() {
        let mut bus = rr_bus(2);
        bus.post(req(0, 5, 0)).unwrap();
        assert!(bus.withdraw(c(0)).is_some());
        assert!(!bus.has_pending(c(0)));
        assert_eq!(bus.tick(0).granted, None);
    }

    #[test]
    fn reset_clears_everything() {
        let mut bus = rr_bus(2);
        bus.post(req(0, 5, 0)).unwrap();
        bus.tick(0);
        bus.reset();
        assert_eq!(bus.owner(), None);
        assert_eq!(bus.pending_count(), 0);
        assert_eq!(bus.total_cycles(), 0);
        assert_eq!(bus.trace().total_slots(), 0);
        // Cycle counter restarts from anywhere after reset.
        bus.tick(0);
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn non_monotonic_cycles_panic() {
        let mut bus = rr_bus(1);
        bus.tick(5);
        bus.tick(5);
    }

    #[test]
    #[should_panic(expected = "without begin_cycle")]
    fn end_without_begin_panics() {
        let mut bus = rr_bus(1);
        bus.end_cycle(0);
    }

    #[test]
    fn gated_end_cycle_defers_grants_but_keeps_accounting() {
        let mut bus = rr_bus(2);
        bus.post(req(0, 5, 0)).unwrap();
        bus.post_privileged(req(1, 5, 0)).unwrap();
        bus.begin_cycle(0);
        assert_eq!(bus.end_cycle_gated(0, false), None);
        assert!(bus.has_pending(c(0)), "request survives the gate");
        assert_eq!(bus.idle_cycles(), 1, "a gated cycle is an idle cycle");
        assert_eq!(bus.total_cycles(), 1);
        // Opening the gate serves the privileged reservation first, as an
        // ungated cycle would.
        bus.begin_cycle(1);
        assert_eq!(bus.end_cycle_gated(1, true), Some(c(1)));
    }

    #[test]
    fn next_event_reports_the_completion_horizon() {
        let mut bus = rr_bus(2);
        bus.post(req(0, 40, 0)).unwrap();
        bus.tick(0); // grant: busy over [0, 40)
        assert_eq!(bus.next_event(0), Some(40));
        // Idle and empty: no bus-side event at all.
        let mut empty = rr_bus(2);
        empty.tick(0);
        assert_eq!(empty.next_event(0), Some(u64::MAX));
    }

    #[test]
    fn next_event_refuses_to_skip_past_imminent_grants() {
        // A pending, eligible request under a work-conserving policy means
        // a grant can land next cycle.
        let mut bus = rr_bus(2);
        bus.begin_cycle(0);
        bus.end_cycle(0);
        bus.post(req(1, 5, 0)).unwrap();
        assert_eq!(bus.next_event(0), Some(1));
        // Same for a privileged reservation.
        let mut bus = rr_bus(2);
        bus.tick(0);
        bus.post_privileged(req(0, 5, 0)).unwrap();
        assert_eq!(bus.next_event(0), Some(1));
    }

    #[test]
    fn next_event_uses_the_tdma_window() {
        let config = BusConfig::new(2, 10).unwrap();
        let mut bus = Bus::new(config, Box::new(Tdma::new(2, 10)));
        bus.post(req(1, 5, 0)).unwrap();
        bus.tick(0); // core 1 waits: its slot starts at cycle 10
        assert_eq!(bus.next_event(0), Some(10));
        // Stepping up to the window never grants; the window cycle does.
        for now in 1..10 {
            assert_eq!(bus.tick(now).granted, None);
        }
        assert_eq!(bus.tick(10).granted, Some(c(1)));
    }

    #[test]
    fn next_event_declines_for_unpredictable_filters() {
        // `Veto` keeps the default `Unknown` horizon: with a pending
        // (ineligible) request the bus must refuse to skip.
        let mut bus = rr_bus(2);
        bus.set_filter(Box::new(Veto(c(0))));
        bus.post(req(0, 5, 0)).unwrap();
        bus.tick(0);
        assert_eq!(bus.next_event(0), None);
    }

    #[test]
    fn advance_accounts_skipped_cycles_like_stepping() {
        // Busy stretch: skip the whole transaction body.
        let mut fast = rr_bus(2);
        fast.post(req(0, 40, 0)).unwrap();
        fast.tick(0);
        fast.advance(0, 40);
        let done = fast.begin_cycle(40);
        assert_eq!(done.unwrap().core, c(0));
        assert_eq!(fast.end_cycle(40), None);

        let mut slow = rr_bus(2);
        slow.post(req(0, 40, 0)).unwrap();
        for now in 0..=40u64 {
            slow.tick(now);
        }
        assert_eq!(fast.total_cycles(), slow.total_cycles());
        assert_eq!(fast.idle_cycles(), slow.idle_cycles());

        // Idle stretch: idle cycles accumulate.
        let mut bus = rr_bus(2);
        bus.tick(0);
        bus.advance(0, 100);
        bus.tick(100);
        assert_eq!(bus.total_cycles(), 101);
        assert_eq!(bus.idle_cycles(), 101);
    }

    #[test]
    fn reset_keeps_the_recording_mode_without_reallocating() {
        let mut bus = rr_bus(2);
        bus.enable_recording_trace();
        bus.post(req(0, 5, 0)).unwrap();
        bus.tick(0);
        assert_eq!(bus.trace().records().unwrap().len(), 1);
        bus.reset();
        assert!(bus.trace().records().is_some(), "still recording");
        assert_eq!(bus.trace().records().unwrap().len(), 0);
        assert_eq!(bus.trace().total_slots(), 0);
    }

    #[test]
    fn trace_and_utilization() {
        let mut bus = rr_bus(1);
        bus.post(req(0, 25, 0)).unwrap();
        for now in 0..50u64 {
            bus.tick(now);
        }
        assert_eq!(bus.trace().slots(c(0)), 1);
        assert_eq!(bus.trace().busy_cycles(c(0)), 25);
        assert!((bus.trace().utilization(50) - 0.5).abs() < 1e-12);
    }
}
