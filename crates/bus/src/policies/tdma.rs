//! TDMA (time-division multiple access) arbitration.

use crate::pending::Candidate;
use crate::policy::{ArbitrationPolicy, RandomSource};
use sim_core::{CoreId, Cycle};

/// TDMA arbitration with homogeneous slots.
///
/// Time is split into fixed slots of `slot_len` cycles (the paper sizes
/// slots to MaxL, the longest possible request, because a request's duration
/// is unknown when it is issued). Core `i` owns every `(t / slot_len) % N ==
/// i` slot and a request is granted **only during the first cycle of its
/// owner's slot** — otherwise an unknown-duration request could overrun into
/// the next core's slot and wreck its WCET guarantee.
///
/// The price is idle bandwidth: a 5-cycle request granted in a 56-cycle slot
/// leaves the bus idle for 51 cycles. TDMA is the only built-in policy that
/// is not work-conserving.
#[derive(Debug, Clone)]
pub struct Tdma {
    n_cores: usize,
    slot_len: u32,
}

impl Tdma {
    /// Creates a TDMA arbiter with `n_cores` homogeneous slots of
    /// `slot_len` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `n_cores == 0` or `slot_len == 0`.
    pub fn new(n_cores: usize, slot_len: u32) -> Self {
        assert!(n_cores > 0, "n_cores must be positive");
        assert!(slot_len > 0, "slot_len must be positive");
        Tdma { n_cores, slot_len }
    }

    /// The slot length in cycles.
    pub fn slot_len(&self) -> u32 {
        self.slot_len
    }

    /// The core owning the slot that contains cycle `now`.
    pub fn slot_owner(&self, now: Cycle) -> CoreId {
        let slot = now / self.slot_len as Cycle;
        CoreId::from_index((slot % self.n_cores as Cycle) as usize)
    }

    /// Whether `now` is the first cycle of a slot (the only grant point).
    pub fn is_slot_start(&self, now: Cycle) -> bool {
        now % self.slot_len as Cycle == 0
    }
}

impl ArbitrationPolicy for Tdma {
    fn name(&self) -> &'static str {
        "TDMA"
    }

    fn select(
        &mut self,
        candidates: &[Candidate],
        now: Cycle,
        _rng: &mut dyn RandomSource,
    ) -> Option<CoreId> {
        if !self.is_slot_start(now) {
            return None;
        }
        let owner = self.slot_owner(now);
        candidates.iter().find(|c| c.core == owner).map(|c| c.core)
    }

    fn is_work_conserving(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::rng::SimRng;

    fn cands(cores: &[usize]) -> Vec<Candidate> {
        cores
            .iter()
            .map(|&i| Candidate {
                core: CoreId::from_index(i),
                issued_at: 0,
                duration: 5,
            })
            .collect()
    }

    #[test]
    fn slot_ownership_rotates() {
        let t = Tdma::new(4, 56);
        assert_eq!(t.slot_owner(0).index(), 0);
        assert_eq!(t.slot_owner(55).index(), 0);
        assert_eq!(t.slot_owner(56).index(), 1);
        assert_eq!(t.slot_owner(56 * 4).index(), 0);
    }

    #[test]
    fn grants_only_at_slot_start() {
        let mut t = Tdma::new(4, 56);
        let mut rng = SimRng::seed_from(0);
        let all = cands(&[0, 1, 2, 3]);
        assert_eq!(t.select(&all, 0, &mut rng).unwrap().index(), 0);
        for now in 1..56 {
            assert_eq!(t.select(&all, now, &mut rng), None, "granted at {now}");
        }
        assert_eq!(t.select(&all, 56, &mut rng).unwrap().index(), 1);
    }

    #[test]
    fn empty_slot_stays_idle_even_with_other_waiters() {
        // Non-work-conserving: if the slot owner has no request, the bus
        // idles even though other cores wait.
        let mut t = Tdma::new(4, 56);
        let mut rng = SimRng::seed_from(0);
        let others = cands(&[1, 2, 3]);
        assert_eq!(t.select(&others, 0, &mut rng), None);
        assert_eq!(t.select(&others, 56, &mut rng).unwrap().index(), 1);
    }

    #[test]
    fn reports_not_work_conserving() {
        assert!(!Tdma::new(4, 56).is_work_conserving());
    }

    #[test]
    fn slot_start_detection() {
        let t = Tdma::new(2, 10);
        assert!(t.is_slot_start(0));
        assert!(t.is_slot_start(10));
        assert!(!t.is_slot_start(5));
        assert!(!t.is_slot_start(11));
    }
}
