//! TDMA (time-division multiple access) arbitration.

use crate::pending::Candidate;
use crate::policy::{ArbitrationPolicy, RandomSource};
use sim_core::{CoreId, Cycle};

/// TDMA arbitration with homogeneous slots.
///
/// Time is split into fixed slots of `slot_len` cycles (the paper sizes
/// slots to MaxL, the longest possible request, because a request's duration
/// is unknown when it is issued). Core `i` owns every `(t / slot_len) % N ==
/// i` slot and a request is granted **only during the first cycle of its
/// owner's slot** — otherwise an unknown-duration request could overrun into
/// the next core's slot and wreck its WCET guarantee.
///
/// The price is idle bandwidth: a 5-cycle request granted in a 56-cycle slot
/// leaves the bus idle for 51 cycles. TDMA is the only built-in policy that
/// is not work-conserving.
#[derive(Debug, Clone)]
pub struct Tdma {
    n_cores: usize,
    slot_len: u32,
}

impl Tdma {
    /// Creates a TDMA arbiter with `n_cores` homogeneous slots of
    /// `slot_len` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `n_cores == 0` or `slot_len == 0`.
    pub fn new(n_cores: usize, slot_len: u32) -> Self {
        assert!(n_cores > 0, "n_cores must be positive");
        assert!(slot_len > 0, "slot_len must be positive");
        Tdma { n_cores, slot_len }
    }

    /// The slot length in cycles.
    pub fn slot_len(&self) -> u32 {
        self.slot_len
    }

    /// The core owning the slot that contains cycle `now`.
    pub fn slot_owner(&self, now: Cycle) -> CoreId {
        let slot = now / self.slot_len as Cycle;
        CoreId::from_index((slot % self.n_cores as Cycle) as usize)
    }

    /// Whether `now` is the first cycle of a slot (the only grant point).
    pub fn is_slot_start(&self, now: Cycle) -> bool {
        now % self.slot_len as Cycle == 0
    }

    /// The first slot-start cycle strictly after `now` whose slot belongs
    /// to `core` — the next cycle at which a pending request by `core`
    /// could possibly be granted.
    pub fn next_slot_start_of(&self, core: CoreId, now: Cycle) -> Cycle {
        let len = self.slot_len as Cycle;
        let n = self.n_cores as Cycle;
        // First whole slot strictly after `now`, then round up to the next
        // slot index congruent to the core's position in the rotation.
        let m0 = now / len + 1;
        let want = core.index() as Cycle % n;
        let m = m0 + (want + n - m0 % n) % n;
        m * len
    }
}

impl ArbitrationPolicy for Tdma {
    fn name(&self) -> &'static str {
        "TDMA"
    }

    fn select(
        &mut self,
        candidates: &[Candidate],
        now: Cycle,
        _rng: &mut dyn RandomSource,
    ) -> Option<CoreId> {
        if !self.is_slot_start(now) {
            return None;
        }
        let owner = self.slot_owner(now);
        candidates.iter().find(|c| c.core == owner).map(|c| c.core)
    }

    fn is_work_conserving(&self) -> bool {
        false
    }

    /// TDMA's grant opportunities are pure functions of time: for a frozen
    /// candidate set the next possible grant is the earliest upcoming slot
    /// start owned by any waiting core.
    fn next_grant_at(&self, candidates: &[Candidate], now: Cycle) -> Option<Cycle> {
        candidates
            .iter()
            .map(|c| self.next_slot_start_of(c.core, now))
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::rng::SimRng;

    fn cands(cores: &[usize]) -> Vec<Candidate> {
        cores
            .iter()
            .map(|&i| Candidate {
                core: CoreId::from_index(i),
                issued_at: 0,
                duration: 5,
            })
            .collect()
    }

    #[test]
    fn slot_ownership_rotates() {
        let t = Tdma::new(4, 56);
        assert_eq!(t.slot_owner(0).index(), 0);
        assert_eq!(t.slot_owner(55).index(), 0);
        assert_eq!(t.slot_owner(56).index(), 1);
        assert_eq!(t.slot_owner(56 * 4).index(), 0);
    }

    #[test]
    fn grants_only_at_slot_start() {
        let mut t = Tdma::new(4, 56);
        let mut rng = SimRng::seed_from(0);
        let all = cands(&[0, 1, 2, 3]);
        assert_eq!(t.select(&all, 0, &mut rng).unwrap().index(), 0);
        for now in 1..56 {
            assert_eq!(t.select(&all, now, &mut rng), None, "granted at {now}");
        }
        assert_eq!(t.select(&all, 56, &mut rng).unwrap().index(), 1);
    }

    #[test]
    fn empty_slot_stays_idle_even_with_other_waiters() {
        // Non-work-conserving: if the slot owner has no request, the bus
        // idles even though other cores wait.
        let mut t = Tdma::new(4, 56);
        let mut rng = SimRng::seed_from(0);
        let others = cands(&[1, 2, 3]);
        assert_eq!(t.select(&others, 0, &mut rng), None);
        assert_eq!(t.select(&others, 56, &mut rng).unwrap().index(), 1);
    }

    #[test]
    fn reports_not_work_conserving() {
        assert!(!Tdma::new(4, 56).is_work_conserving());
    }

    #[test]
    fn next_slot_start_of_finds_the_owned_boundary() {
        let t = Tdma::new(4, 56);
        // From mid-slot 0, core 1's next slot starts at 56, core 0's at
        // 4 * 56 (the rotation must come all the way around).
        assert_eq!(t.next_slot_start_of(CoreId::from_index(1), 10), 56);
        assert_eq!(t.next_slot_start_of(CoreId::from_index(0), 10), 224);
        // Exactly at a slot start, the *next* owned start is returned.
        assert_eq!(t.next_slot_start_of(CoreId::from_index(0), 0), 224);
        assert_eq!(t.next_slot_start_of(CoreId::from_index(2), 111), 112);
        // Brute-force cross-check against is_slot_start/slot_owner.
        for core in 0..3usize {
            for now in 0..400u64 {
                let t3 = Tdma::new(3, 10);
                let predicted = t3.next_slot_start_of(CoreId::from_index(core), now);
                let actual = (now + 1..)
                    .find(|&c| t3.is_slot_start(c) && t3.slot_owner(c).index() == core)
                    .unwrap();
                assert_eq!(predicted, actual, "core {core} at {now}");
            }
        }
    }

    #[test]
    fn next_grant_at_matches_select() {
        let mut t = Tdma::new(4, 56);
        let mut rng = SimRng::seed_from(0);
        let waiting = cands(&[1, 3]);
        let predicted = t.next_grant_at(&waiting, 10).unwrap();
        assert_eq!(predicted, 56, "core 1's slot is the nearest");
        // No grant strictly before the prediction, a grant exactly at it.
        for now in 11..predicted {
            assert_eq!(t.select(&waiting, now, &mut rng), None, "at {now}");
        }
        assert_eq!(t.select(&waiting, predicted, &mut rng).unwrap().index(), 1);
        assert_eq!(t.next_grant_at(&[], 10), None, "no waiters, no windows");
    }

    #[test]
    fn slot_start_detection() {
        let t = Tdma::new(2, 10);
        assert!(t.is_slot_start(0));
        assert!(t.is_slot_start(10));
        assert!(!t.is_slot_start(5));
        assert!(!t.is_slot_start(11));
    }
}
