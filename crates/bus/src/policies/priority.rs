//! Fixed-priority arbitration — the anti-example.

use crate::pending::Candidate;
use crate::policy::{ArbitrationPolicy, RandomSource};
use sim_core::{CoreId, Cycle};

/// Fixed-priority arbitration: the candidate with the lowest core index
/// always wins.
///
/// The paper's Section II rules this out for platforms where *all* cores run
/// real-time tasks: a high-priority core issuing requests back-to-back
/// starves everyone below it, so no WCET bound exists for low-priority
/// cores. It is included as a baseline to demonstrate exactly that (see the
/// starvation test below and the fairness sweep bench).
#[derive(Debug, Clone, Default)]
pub struct FixedPriority;

impl FixedPriority {
    /// Creates the fixed-priority arbiter (priority = core index order).
    pub fn new() -> Self {
        FixedPriority
    }
}

impl ArbitrationPolicy for FixedPriority {
    fn name(&self) -> &'static str {
        "PRI"
    }

    fn select(
        &mut self,
        candidates: &[Candidate],
        _now: Cycle,
        _rng: &mut dyn RandomSource,
    ) -> Option<CoreId> {
        // candidates are ordered by core index, so the first is the winner.
        candidates.first().map(|c| c.core)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::rng::SimRng;

    fn cands(cores: &[usize]) -> Vec<Candidate> {
        cores
            .iter()
            .map(|&i| Candidate {
                core: CoreId::from_index(i),
                issued_at: 0,
                duration: 5,
            })
            .collect()
    }

    #[test]
    fn lowest_index_always_wins() {
        let mut p = FixedPriority::new();
        let mut rng = SimRng::seed_from(0);
        assert_eq!(
            p.select(&cands(&[1, 2, 3]), 0, &mut rng).unwrap().index(),
            1
        );
        assert_eq!(p.select(&cands(&[0, 3]), 0, &mut rng).unwrap().index(), 0);
    }

    #[test]
    fn starves_lower_priorities_under_saturation() {
        // With core 0 always pending, no other core is ever granted: the
        // property that disqualifies fixed priority for real-time buses.
        let mut p = FixedPriority::new();
        let mut rng = SimRng::seed_from(0);
        let all = cands(&[0, 1, 2, 3]);
        for t in 0..1000 {
            assert_eq!(p.select(&all, t, &mut rng).unwrap().index(), 0);
        }
    }

    #[test]
    fn empty_yields_none() {
        let mut p = FixedPriority::new();
        let mut rng = SimRng::seed_from(0);
        assert_eq!(p.select(&[], 0, &mut rng), None);
    }
}
