//! FIFO (arrival-order) arbitration.

use crate::pending::Candidate;
use crate::policy::{ArbitrationPolicy, RandomSource};
use sim_core::{CoreId, Cycle};

/// First-in-first-out arbitration: the pending request that became ready
/// earliest wins; ties (same issue cycle) break by core index, which makes
/// the policy fully deterministic.
///
/// FIFO is slot-fair under saturation (every waiting core is served before
/// any core is served twice) but, like round-robin, it is oblivious to
/// request *duration* and therefore bandwidth-unfair in the paper's sense.
#[derive(Debug, Clone, Default)]
pub struct Fifo;

impl Fifo {
    /// Creates the FIFO arbiter.
    pub fn new() -> Self {
        Fifo
    }
}

impl ArbitrationPolicy for Fifo {
    fn name(&self) -> &'static str {
        "FIFO"
    }

    fn select(
        &mut self,
        candidates: &[Candidate],
        _now: Cycle,
        _rng: &mut dyn RandomSource,
    ) -> Option<CoreId> {
        candidates
            .iter()
            .min_by_key(|c| (c.issued_at, c.core.index()))
            .map(|c| c.core)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::rng::SimRng;

    fn cand(core: usize, at: Cycle) -> Candidate {
        Candidate {
            core: CoreId::from_index(core),
            issued_at: at,
            duration: 5,
        }
    }

    #[test]
    fn grants_oldest_request() {
        let mut f = Fifo::new();
        let mut rng = SimRng::seed_from(0);
        let cands = [cand(0, 30), cand(1, 10), cand(2, 20)];
        assert_eq!(f.select(&cands, 40, &mut rng).unwrap().index(), 1);
    }

    #[test]
    fn ties_break_by_core_index() {
        let mut f = Fifo::new();
        let mut rng = SimRng::seed_from(0);
        let cands = [cand(2, 10), cand(3, 10)];
        assert_eq!(f.select(&cands, 40, &mut rng).unwrap().index(), 2);
    }

    #[test]
    fn empty_yields_none() {
        let mut f = Fifo::new();
        let mut rng = SimRng::seed_from(0);
        assert_eq!(f.select(&[], 0, &mut rng), None);
    }

    #[test]
    fn serves_every_waiter_before_repeats() {
        // With all cores re-posting immediately, FIFO serves them in a
        // rotating order: each service makes that core's next request the
        // youngest.
        let mut f = Fifo::new();
        let mut rng = SimRng::seed_from(0);
        let mut issued = [0u64, 0, 0, 0];
        let mut order = Vec::new();
        let mut now = 0u64;
        for _ in 0..12 {
            let cands: Vec<Candidate> = (0..4).map(|i| cand(i, issued[i])).collect();
            let w = f.select(&cands, now, &mut rng).unwrap();
            order.push(w.index());
            now += 5;
            issued[w.index()] = now;
        }
        for window in order.chunks(4) {
            let mut sorted = window.to_vec();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3], "order: {order:?}");
        }
    }
}
