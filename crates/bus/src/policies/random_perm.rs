//! Random-permutations arbitration — the paper's baseline policy ("RP").

use crate::pending::Candidate;
use crate::policy::{ArbitrationPolicy, RandomSource};
use sim_core::{CoreId, Cycle};

/// Random-permutations arbitration (Jalle et al., DATE 2014).
///
/// Time is organized in *rounds*. At the start of each round a fresh uniform
/// random permutation of the cores is drawn (on the FPGA, from the
/// APRANDBANK random-bit bank); within the round, the bus is offered to
/// cores in permutation order and **each core is granted at most once per
/// round**. The implementation is work-conserving: cores without a pending
/// request are skipped, and a new round starts as soon as no not-yet-served
/// core has a pending request.
///
/// The once-per-round property is what makes RP MBPTA-friendly: the
/// probability that a request waits for `k` other cores is known and
/// independent across rounds, while the worst case (being last in the
/// permutation) stays close to the average. Like all slot-fair policies it
/// is still bandwidth-unfair for heterogeneous request durations — this is
/// the policy the paper pairs CBA with.
///
/// # Example
///
/// ```
/// use cba_bus::policies::RandomPermutation;
/// use cba_bus::{ArbitrationPolicy, Candidate};
/// use sim_core::{CoreId, rng::SimRng};
///
/// let mut rp = RandomPermutation::new(4);
/// let mut rng = SimRng::seed_from(7);
/// let all: Vec<Candidate> = (0..4)
///     .map(|i| Candidate { core: CoreId::from_index(i), issued_at: 0, duration: 5 })
///     .collect();
/// // One full round grants each core exactly once.
/// let mut served = [false; 4];
/// for t in 0..4 {
///     let w = rp.select(&all, t, &mut rng).unwrap();
///     rp.on_grant(w, t);
///     assert!(!served[w.index()], "core granted twice in a round");
///     served[w.index()] = true;
/// }
/// assert!(served.iter().all(|&s| s));
/// ```
#[derive(Debug, Clone)]
pub struct RandomPermutation {
    n_cores: usize,
    /// Current round's permutation (core indices).
    order: Vec<usize>,
    /// Cores already granted in this round.
    served: Vec<bool>,
    /// Whether a round is in progress.
    round_active: bool,
}

impl RandomPermutation {
    /// Creates a random-permutations arbiter for `n_cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `n_cores == 0`.
    pub fn new(n_cores: usize) -> Self {
        assert!(n_cores > 0, "n_cores must be positive");
        RandomPermutation {
            n_cores,
            order: (0..n_cores).collect(),
            served: vec![false; n_cores],
            round_active: false,
        }
    }

    /// Draws a fresh permutation with Fisher–Yates using the arbiter's
    /// random source (bit-bank or software RNG).
    fn new_round(&mut self, rng: &mut dyn RandomSource) {
        for i in 0..self.n_cores {
            self.order[i] = i;
        }
        for i in (1..self.n_cores).rev() {
            let j = rng.next_below(i as u64 + 1) as usize;
            self.order.swap(i, j);
        }
        self.served.iter_mut().for_each(|s| *s = false);
        self.round_active = true;
    }

    /// The first not-yet-served core in permutation order that has a
    /// pending candidate.
    fn pick(&self, candidates: &[Candidate]) -> Option<CoreId> {
        self.order
            .iter()
            .filter(|&&idx| !self.served[idx])
            .find_map(|&idx| candidates.iter().find(|c| c.core.index() == idx))
            .map(|c| c.core)
    }

    /// Cores already served in the current round (for tests/inspection).
    pub fn served(&self) -> &[bool] {
        &self.served
    }
}

impl ArbitrationPolicy for RandomPermutation {
    fn name(&self) -> &'static str {
        "RP"
    }

    fn select(
        &mut self,
        candidates: &[Candidate],
        _now: Cycle,
        rng: &mut dyn RandomSource,
    ) -> Option<CoreId> {
        if candidates.is_empty() {
            return None;
        }
        if self.round_active {
            if let Some(core) = self.pick(candidates) {
                return Some(core);
            }
            // All pending cores were already served this round: start the
            // next round (work conservation).
        }
        self.new_round(rng);
        self.pick(candidates)
    }

    fn on_grant(&mut self, core: CoreId, _now: Cycle) {
        self.served[core.index()] = true;
        if self.served.iter().all(|&s| s) {
            self.round_active = false;
        }
    }

    fn reset(&mut self) {
        self.round_active = false;
        self.served.iter_mut().for_each(|s| *s = false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::lfsr::LfsrBank;
    use sim_core::rng::SimRng;

    fn cands(cores: &[usize]) -> Vec<Candidate> {
        cores
            .iter()
            .map(|&i| Candidate {
                core: CoreId::from_index(i),
                issued_at: 0,
                duration: 5,
            })
            .collect()
    }

    #[test]
    fn each_round_grants_each_core_once() {
        let mut rp = RandomPermutation::new(4);
        let mut rng = SimRng::seed_from(11);
        let all = cands(&[0, 1, 2, 3]);
        for round in 0..50 {
            let mut seen = [false; 4];
            for k in 0..4 {
                let w = rp.select(&all, (round * 4 + k) as Cycle, &mut rng).unwrap();
                rp.on_grant(w, 0);
                assert!(!seen[w.index()], "double grant in round {round}");
                seen[w.index()] = true;
            }
        }
    }

    #[test]
    fn permutations_vary_across_rounds() {
        let mut rp = RandomPermutation::new(4);
        let mut rng = SimRng::seed_from(13);
        let all = cands(&[0, 1, 2, 3]);
        let mut first_winners = Vec::new();
        for _ in 0..64 {
            let mut round = Vec::new();
            for _ in 0..4 {
                let w = rp.select(&all, 0, &mut rng).unwrap();
                rp.on_grant(w, 0);
                round.push(w.index());
            }
            first_winners.push(round[0]);
        }
        // Every core should lead some round.
        for i in 0..4 {
            assert!(first_winners.contains(&i), "core {i} never first");
        }
    }

    #[test]
    fn work_conserving_when_only_served_cores_pend() {
        let mut rp = RandomPermutation::new(2);
        let mut rng = SimRng::seed_from(5);
        let only0 = cands(&[0]);
        // Core 0 is served, then immediately pends again; a new round must
        // start rather than leaving the bus idle.
        for t in 0..10 {
            let w = rp.select(&only0, t, &mut rng).unwrap();
            assert_eq!(w.index(), 0);
            rp.on_grant(w, t);
        }
    }

    #[test]
    fn skips_idle_cores_within_round() {
        let mut rp = RandomPermutation::new(4);
        let mut rng = SimRng::seed_from(17);
        let some = cands(&[1, 2]);
        let w1 = rp.select(&some, 0, &mut rng).unwrap();
        rp.on_grant(w1, 0);
        let w2 = rp.select(&some, 1, &mut rng).unwrap();
        assert_ne!(w1, w2);
        assert!(matches!(w2.index(), 1 | 2));
    }

    #[test]
    fn uniform_slot_shares_under_saturation() {
        let mut rp = RandomPermutation::new(4);
        let mut rng = SimRng::seed_from(23);
        let all = cands(&[0, 1, 2, 3]);
        let mut counts = [0u32; 4];
        for t in 0..4000 {
            let w = rp.select(&all, t, &mut rng).unwrap();
            rp.on_grant(w, t);
            counts[w.index()] += 1;
        }
        assert_eq!(counts.iter().sum::<u32>(), 4000);
        for &c in &counts {
            assert_eq!(c, 1000, "rounds guarantee exact slot fairness: {counts:?}");
        }
    }

    #[test]
    fn works_with_hardware_bit_bank() {
        let mut rp = RandomPermutation::new(4);
        let mut bank = LfsrBank::new(8, 0xBEEF).unwrap();
        let all = cands(&[0, 1, 2, 3]);
        let mut counts = [0u32; 4];
        for t in 0..400 {
            let w = rp.select(&all, t, &mut bank).unwrap();
            rp.on_grant(w, t);
            counts[w.index()] += 1;
        }
        assert_eq!(counts, [100, 100, 100, 100]);
    }

    #[test]
    fn reset_cancels_round() {
        let mut rp = RandomPermutation::new(2);
        let mut rng = SimRng::seed_from(31);
        let all = cands(&[0, 1]);
        let w = rp.select(&all, 0, &mut rng).unwrap();
        rp.on_grant(w, 0);
        rp.reset();
        assert!(rp.served().iter().all(|&s| !s));
    }
}
