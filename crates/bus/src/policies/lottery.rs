//! Lottery arbitration (LOTTERYBUS-style).

use crate::pending::Candidate;
use crate::policy::{ArbitrationPolicy, RandomSource};
use sim_core::{CoreId, Cycle};

/// Lottery arbitration: each arbitration, every candidate holds a number of
/// tickets and a uniformly random ticket picks the winner.
///
/// With equal tickets this is a memoryless uniform draw; with weighted
/// tickets bandwidth can be skewed toward specific cores (the LOTTERYBUS
/// design of Lahiri et al., DAC 2001, which the paper cites as an
/// MBPTA-compatible baseline). Note the skew controls *slot* probability,
/// not *cycle* share — that distinction is the paper's point.
///
/// # Example
///
/// ```
/// use cba_bus::policies::Lottery;
/// use cba_bus::ArbitrationPolicy;
///
/// let uniform = Lottery::uniform();
/// assert_eq!(uniform.name(), "LOT");
/// let weighted = Lottery::with_tickets(vec![3, 1, 1, 1]).unwrap();
/// assert_eq!(weighted.tickets(0), 3);
/// ```
#[derive(Debug, Clone)]
pub struct Lottery {
    tickets: Option<Vec<u32>>,
}

impl Lottery {
    /// A lottery where every candidate holds exactly one ticket.
    pub fn uniform() -> Self {
        Lottery { tickets: None }
    }

    /// A lottery with per-core ticket counts (index = core index).
    ///
    /// # Errors
    ///
    /// Returns an error message if `tickets` is empty or any count is zero
    /// (a zero-ticket core could never be granted — that is starvation by
    /// configuration and almost certainly a bug).
    pub fn with_tickets(tickets: Vec<u32>) -> Result<Self, String> {
        if tickets.is_empty() {
            return Err("ticket vector must not be empty".into());
        }
        if tickets.contains(&0) {
            return Err("every core must hold at least one ticket".into());
        }
        Ok(Lottery {
            tickets: Some(tickets),
        })
    }

    /// Ticket count of `core` (1 for uniform lotteries).
    pub fn tickets(&self, core: usize) -> u32 {
        match &self.tickets {
            None => 1,
            Some(t) => t.get(core).copied().unwrap_or(1),
        }
    }
}

impl ArbitrationPolicy for Lottery {
    fn name(&self) -> &'static str {
        "LOT"
    }

    fn select(
        &mut self,
        candidates: &[Candidate],
        _now: Cycle,
        rng: &mut dyn RandomSource,
    ) -> Option<CoreId> {
        if candidates.is_empty() {
            return None;
        }
        let total: u64 = candidates
            .iter()
            .map(|c| self.tickets(c.core.index()) as u64)
            .sum();
        let mut draw = rng.next_below(total);
        for c in candidates {
            let t = self.tickets(c.core.index()) as u64;
            if draw < t {
                return Some(c.core);
            }
            draw -= t;
        }
        unreachable!("draw below total tickets always lands on a candidate")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::rng::SimRng;

    fn cands(cores: &[usize]) -> Vec<Candidate> {
        cores
            .iter()
            .map(|&i| Candidate {
                core: CoreId::from_index(i),
                issued_at: 0,
                duration: 5,
            })
            .collect()
    }

    #[test]
    fn uniform_covers_all_candidates() {
        let mut l = Lottery::uniform();
        let mut rng = SimRng::seed_from(1);
        let all = cands(&[0, 1, 2, 3]);
        let mut counts = [0u32; 4];
        for t in 0..4000 {
            let w = l.select(&all, t, &mut rng).unwrap();
            counts[w.index()] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "skewed: {counts:?}");
        }
    }

    #[test]
    fn weighted_skews_slot_probability() {
        let mut l = Lottery::with_tickets(vec![3, 1]).unwrap();
        let mut rng = SimRng::seed_from(2);
        let all = cands(&[0, 1]);
        let mut wins0 = 0u32;
        let n = 8000;
        for t in 0..n {
            if l.select(&all, t, &mut rng).unwrap().index() == 0 {
                wins0 += 1;
            }
        }
        let frac = wins0 as f64 / n as f64;
        assert!((0.70..0.80).contains(&frac), "expected ~0.75, got {frac}");
    }

    #[test]
    fn zero_tickets_rejected() {
        assert!(Lottery::with_tickets(vec![1, 0]).is_err());
        assert!(Lottery::with_tickets(vec![]).is_err());
    }

    #[test]
    fn empty_candidates_none() {
        let mut l = Lottery::uniform();
        let mut rng = SimRng::seed_from(3);
        assert_eq!(l.select(&[], 0, &mut rng), None);
    }

    #[test]
    fn single_candidate_always_wins() {
        let mut l = Lottery::uniform();
        let mut rng = SimRng::seed_from(4);
        let one = cands(&[2]);
        for t in 0..100 {
            assert_eq!(l.select(&one, t, &mut rng).unwrap().index(), 2);
        }
    }
}
