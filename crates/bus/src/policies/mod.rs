//! The built-in arbitration policies.
//!
//! These are the policies the paper's Section II surveys as the state of the
//! art for real-time buses, all of which are *slot-fair* under saturation:
//!
//! | Policy | Module | Notes |
//! |---|---|---|
//! | FIFO | [`fifo`] | grant in arrival order |
//! | Round-robin | [`round_robin`] | cyclic order after last grant |
//! | TDMA | [`tdma`] | fixed MaxL-cycle slots, grants only at slot start |
//! | Lottery | [`lottery`] | (weighted) random draw, LOTTERYBUS-style |
//! | Random permutations | [`random_perm`] | MBPTA-friendly baseline ("RP") |
//! | Fixed priority | [`priority`] | starves low priority; anti-example |
//!
//! The paper's credit-based arbitration composes with any of them — it
//! filters the candidate set *before* these policies choose (see the `cba`
//! crate).

pub mod fifo;
pub mod lottery;
pub mod priority;
pub mod random_perm;
pub mod round_robin;
pub mod tdma;

pub use fifo::Fifo;
pub use lottery::Lottery;
pub use priority::FixedPriority;
pub use random_perm::RandomPermutation;
pub use round_robin::RoundRobin;
pub use tdma::Tdma;
