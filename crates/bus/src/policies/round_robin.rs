//! Round-robin arbitration.

use crate::pending::Candidate;
use crate::policy::{ArbitrationPolicy, RandomSource};
use sim_core::{CoreId, Cycle};

/// Classic round-robin: after granting core `i`, the search for the next
/// winner starts at core `i + 1` (mod N), so under saturation every core is
/// granted exactly once per N grants.
///
/// Round-robin is *slot-fair*: with contenders issuing requests of unequal
/// duration it produces the bandwidth skew the paper's Section II
/// illustrates (a 5-cycle requester alternating with a 45-cycle requester
/// receives only 10% of the bus cycles).
///
/// # Example
///
/// ```
/// use cba_bus::policies::RoundRobin;
/// use cba_bus::{ArbitrationPolicy, Candidate};
/// use sim_core::CoreId;
/// use sim_core::rng::SimRng;
///
/// let mut rr = RoundRobin::new(4);
/// let mut rng = SimRng::seed_from(0);
/// let all: Vec<Candidate> = (0..4)
///     .map(|i| Candidate { core: CoreId::from_index(i), issued_at: 0, duration: 5 })
///     .collect();
/// let first = rr.select(&all, 0, &mut rng).unwrap();
/// rr.on_grant(first, 0);
/// let second = rr.select(&all, 5, &mut rng).unwrap();
/// assert_eq!(second.index(), (first.index() + 1) % 4);
/// ```
#[derive(Debug, Clone)]
pub struct RoundRobin {
    n_cores: usize,
    next: usize,
}

impl RoundRobin {
    /// Creates a round-robin arbiter for `n_cores` cores, starting its
    /// search at core 0.
    ///
    /// # Panics
    ///
    /// Panics if `n_cores == 0`.
    pub fn new(n_cores: usize) -> Self {
        assert!(n_cores > 0, "n_cores must be positive");
        RoundRobin { n_cores, next: 0 }
    }

    /// The core index at which the next search will start.
    pub fn cursor(&self) -> usize {
        self.next
    }
}

impl ArbitrationPolicy for RoundRobin {
    fn name(&self) -> &'static str {
        "RR"
    }

    fn select(
        &mut self,
        candidates: &[Candidate],
        _now: Cycle,
        _rng: &mut dyn RandomSource,
    ) -> Option<CoreId> {
        if candidates.is_empty() {
            return None;
        }
        // candidates are ordered by core index; find the first candidate at
        // or after the cursor, wrapping around.
        candidates
            .iter()
            .find(|c| c.core.index() >= self.next)
            .or_else(|| candidates.first())
            .map(|c| c.core)
    }

    fn on_grant(&mut self, core: CoreId, _now: Cycle) {
        self.next = (core.index() + 1) % self.n_cores;
    }

    fn reset(&mut self) {
        self.next = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::rng::SimRng;

    fn cands(cores: &[usize]) -> Vec<Candidate> {
        cores
            .iter()
            .map(|&i| Candidate {
                core: CoreId::from_index(i),
                issued_at: 0,
                duration: 5,
            })
            .collect()
    }

    #[test]
    fn cycles_through_all_pending() {
        let mut rr = RoundRobin::new(4);
        let mut rng = SimRng::seed_from(0);
        let all = cands(&[0, 1, 2, 3]);
        let mut order = Vec::new();
        for t in 0..8 {
            let w = rr.select(&all, t, &mut rng).unwrap();
            rr.on_grant(w, t);
            order.push(w.index());
        }
        assert_eq!(order, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn skips_idle_cores() {
        let mut rr = RoundRobin::new(4);
        let mut rng = SimRng::seed_from(0);
        let some = cands(&[1, 3]);
        let w = rr.select(&some, 0, &mut rng).unwrap();
        assert_eq!(w.index(), 1);
        rr.on_grant(w, 0);
        let w = rr.select(&some, 1, &mut rng).unwrap();
        assert_eq!(w.index(), 3);
        rr.on_grant(w, 1);
        // wraps around
        let w = rr.select(&some, 2, &mut rng).unwrap();
        assert_eq!(w.index(), 1);
    }

    #[test]
    fn empty_candidates_yield_none() {
        let mut rr = RoundRobin::new(4);
        let mut rng = SimRng::seed_from(0);
        assert_eq!(rr.select(&[], 0, &mut rng), None);
    }

    #[test]
    fn slot_counts_differ_by_at_most_one_under_saturation() {
        let mut rr = RoundRobin::new(4);
        let mut rng = SimRng::seed_from(0);
        let all = cands(&[0, 1, 2, 3]);
        let mut counts = [0u32; 4];
        for t in 0..1003 {
            let w = rr.select(&all, t, &mut rng).unwrap();
            rr.on_grant(w, t);
            counts[w.index()] += 1;
        }
        let min = counts.iter().min().unwrap();
        let max = counts.iter().max().unwrap();
        assert!(max - min <= 1, "counts: {counts:?}");
    }

    #[test]
    fn reset_restores_cursor() {
        let mut rr = RoundRobin::new(2);
        rr.on_grant(CoreId::from_index(0), 0);
        assert_eq!(rr.cursor(), 1);
        rr.reset();
        assert_eq!(rr.cursor(), 0);
    }
}
