//! The arbiter interfaces: arbitration policies, eligibility filters, and
//! the random-bit source they draw from.
//!
//! Arbitration on the modeled platform is a two-stage decision, mirroring
//! the paper's Section III.A:
//!
//! 1. an [`EligibilityFilter`] decides which pending requests are
//!    *arbitrable* this cycle (the paper's CBA is exactly such a filter:
//!    "only those whose core has MaxL budget can be arbitrated");
//! 2. an [`ArbitrationPolicy`] picks one winner among the eligible
//!    candidates ("then, any arbitration policy can be applied").
//!
//! Both stages are trait objects so that platforms can be assembled from
//! configuration; both are sequential state machines driven by the bus.

use crate::pending::{Candidate, PendingSet};
use sim_core::lfsr::LfsrBank;
use sim_core::rng::SimRng;
use sim_core::{CoreId, Cycle};

/// Source of uniform random draws for randomized arbitration policies.
///
/// On the FPGA prototype the arbiter consumes bits from the APRANDBANK
/// hardware PRNG; in simulation either the faithful LFSR-bank model
/// ([`sim_core::lfsr::LfsrBank`]) or a fast software stream
/// ([`sim_core::rng::SimRng`]) can be used — both implement this trait.
pub trait RandomSource: std::fmt::Debug {
    /// Uniform draw in `0..n`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `n == 0`.
    fn next_below(&mut self, n: u64) -> u64;
}

impl RandomSource for SimRng {
    fn next_below(&mut self, n: u64) -> u64 {
        self.gen_range_u64(0..n)
    }
}

impl RandomSource for LfsrBank {
    fn next_below(&mut self, n: u64) -> u64 {
        LfsrBank::next_below(self, n)
    }
}

/// An arbitration policy: picks the winner among eligible candidates.
///
/// Implementations are sequential machines; the bus calls [`select`] on
/// every cycle where the bus is free and re-arbitration is possible, and
/// [`on_grant`] exactly when a candidate returned by `select` is granted.
///
/// `candidates` is always ordered by core index and contains only requests
/// that passed the eligibility filter. Returning `None` leaves the bus idle
/// for the cycle (work-conserving policies return `Some` whenever
/// `candidates` is non-empty; TDMA legitimately returns `None` mid-slot).
///
/// [`select`]: ArbitrationPolicy::select
/// [`on_grant`]: ArbitrationPolicy::on_grant
pub trait ArbitrationPolicy: std::fmt::Debug {
    /// Short stable name used in reports ("RR", "FIFO", "RP", ...).
    fn name(&self) -> &'static str;

    /// Picks a winner among `candidates` at cycle `now`, or `None` to leave
    /// the bus idle this cycle.
    fn select(
        &mut self,
        candidates: &[Candidate],
        now: Cycle,
        rng: &mut dyn RandomSource,
    ) -> Option<CoreId>;

    /// Notifies the policy that `core` was granted the bus at `now`.
    fn on_grant(&mut self, core: CoreId, now: Cycle) {
        let _ = (core, now);
    }

    /// Resets internal state for a fresh run.
    fn reset(&mut self) {}

    /// Whether the policy is work-conserving (grants whenever a candidate
    /// exists). TDMA is the one built-in policy that is not.
    fn is_work_conserving(&self) -> bool {
        true
    }

    /// Event hook for the fast-forward engine, consulted only for
    /// non-work-conserving policies: given that [`select`] just returned
    /// `None` at `now` for this (non-empty) eligible candidate set, the
    /// earliest future cycle at which `select` could return a winner for
    /// the **same frozen set**.
    ///
    /// Returning `None` means "cannot predict", which disables cycle
    /// skipping while candidates wait — always safe, and the default.
    /// Work-conserving policies are never asked (they grant immediately,
    /// so there is nothing to wait for). TDMA overrides this with its
    /// next owned slot boundary.
    ///
    /// [`select`]: ArbitrationPolicy::select
    fn next_grant_at(&self, candidates: &[Candidate], now: Cycle) -> Option<Cycle> {
        let _ = (candidates, now);
        None
    }
}

/// How an [`EligibilityFilter`]'s verdicts can evolve over an
/// interaction-free idle stretch (bus free, no grants, frozen pending
/// set), as reported by
/// [`EligibilityFilter::next_eligibility_flip`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterHorizon {
    /// No pending core's verdict can change: eligibility is frozen for the
    /// whole stretch (e.g. [`NoFilter`], or a credit filter whose pending
    /// cores are all already eligible or can never recover).
    Static,
    /// The earliest cycle at which some pending core's verdict can change
    /// (for the credit filter: the first arbitration cycle at which a
    /// recovering budget crosses the `MaxL` threshold, or a WCET-mode
    /// `COMP` bit latches).
    At(Cycle),
    /// The filter cannot predict its own evolution; the engine must step
    /// per cycle. This is the conservative default for filters that do not
    /// opt into the fast path.
    Unknown,
}

/// Per-cycle filter deciding which pending requests may be arbitrated.
///
/// This is the hook the paper's credit-based arbitration (crate `cba`)
/// implements. The bus drives the filter as follows, every cycle:
///
/// 1. during arbitration (bus free), [`is_eligible`] is consulted for each
///    pending request;
/// 2. when a request is granted, [`on_grant`] fires;
/// 3. at the end of the cycle, [`tick`] fires with the core occupying the
///    bus during that cycle (if any) and the pending set — this is where
///    budget counters advance.
///
/// [`is_eligible`]: EligibilityFilter::is_eligible
/// [`on_grant`]: EligibilityFilter::on_grant
/// [`tick`]: EligibilityFilter::tick
pub trait EligibilityFilter: std::fmt::Debug {
    /// Short stable name used in reports ("none", "CBA", "H-CBA", ...).
    fn name(&self) -> &'static str;

    /// Whether the pending request of `core` may enter arbitration at `now`.
    fn is_eligible(&self, core: CoreId, now: Cycle) -> bool;

    /// Notifies the filter that `core` was granted at `now` for a
    /// transaction of `duration` cycles.
    fn on_grant(&mut self, core: CoreId, duration: u32, now: Cycle) {
        let _ = (core, duration, now);
    }

    /// Advances filter state by one cycle. `owner` is the core holding the
    /// bus *during* cycle `now` (after arbitration), `pending` the pending
    /// set at end of cycle.
    fn tick(&mut self, now: Cycle, owner: Option<CoreId>, pending: &PendingSet) {
        let _ = (now, owner, pending);
    }

    /// Bulk-advances filter state by `k` cycles of **unchanged occupancy**:
    /// exactly equivalent to `k` successive [`tick`] calls for cycles
    /// `now, now + 1, ..., now + k - 1`, all with the same `owner` and the
    /// same (frozen) `pending` set.
    ///
    /// The default literally loops [`tick`], so any filter is correct under
    /// the fast-forward engine; filters with linear per-cycle state (the
    /// credit counters) override this with an O(1) closed form.
    ///
    /// [`tick`]: EligibilityFilter::tick
    fn advance(&mut self, now: Cycle, k: u64, owner: Option<CoreId>, pending: &PendingSet) {
        for i in 0..k {
            self.tick(now + i, owner, pending);
        }
    }

    /// Event hook for the fast-forward engine: how the verdicts for the
    /// cores in `pending` can evolve from cycle `now + 1` onwards,
    /// assuming the bus stays free and the pending set frozen (so every
    /// skipped cycle is an idle [`tick`](EligibilityFilter::tick)).
    ///
    /// [`FilterHorizon::At`]`(t)` promises that every verdict consulted by
    /// arbitration strictly before cycle `t` equals the verdict at `now +
    /// 1`; the engine stops any skip at `t` and re-runs the real protocol.
    /// The default is [`FilterHorizon::Unknown`], which disables idle-bus
    /// skipping for filters that have not opted in.
    fn next_eligibility_flip(&self, now: Cycle, pending: &PendingSet) -> FilterHorizon {
        let _ = (now, pending);
        FilterHorizon::Unknown
    }

    /// Resets internal state for a fresh run.
    fn reset(&mut self) {}
}

/// The identity filter: every pending request is always eligible.
///
/// This is the baseline ("no CBA") configuration of the paper's evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoFilter;

impl NoFilter {
    /// Creates the identity filter.
    pub fn new() -> Self {
        NoFilter
    }
}

impl EligibilityFilter for NoFilter {
    fn name(&self) -> &'static str {
        "none"
    }

    fn is_eligible(&self, _core: CoreId, _now: Cycle) -> bool {
        true
    }

    fn advance(&mut self, _now: Cycle, _k: u64, _owner: Option<CoreId>, _pending: &PendingSet) {}

    fn next_eligibility_flip(&self, _now: Cycle, _pending: &PendingSet) -> FilterHorizon {
        FilterHorizon::Static
    }
}

/// Configuration-level selector for the built-in arbitration policies.
///
/// # Example
///
/// ```
/// use cba_bus::PolicyKind;
///
/// let policy = PolicyKind::RandomPermutation.build(4, 56);
/// assert_eq!(policy.name(), "RP");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Grant in request arrival order.
    Fifo,
    /// Cyclic order starting after the last granted core.
    RoundRobin,
    /// Fixed slots of MaxL cycles, one core per slot, grants only at slot
    /// starts.
    Tdma,
    /// Uniform (or weighted) random draw among candidates each arbitration.
    Lottery,
    /// Random permutation per round; each core granted at most once per
    /// round (the paper's baseline, "RP").
    RandomPermutation,
    /// Lowest core index always wins. Not usable for real-time (starves
    /// low-priority cores); included as the cautionary baseline.
    FixedPriority,
}

impl PolicyKind {
    /// All built-in policy kinds.
    pub const ALL: [PolicyKind; 6] = [
        PolicyKind::Fifo,
        PolicyKind::RoundRobin,
        PolicyKind::Tdma,
        PolicyKind::Lottery,
        PolicyKind::RandomPermutation,
        PolicyKind::FixedPriority,
    ];

    /// Instantiates the policy for an `n_cores` platform whose longest
    /// transaction is `max_latency` cycles (used as the TDMA slot length,
    /// per the paper's Section II).
    ///
    /// # Panics
    ///
    /// Panics if `n_cores == 0` or `max_latency == 0`.
    pub fn build(self, n_cores: usize, max_latency: u32) -> Box<dyn ArbitrationPolicy> {
        assert!(n_cores > 0, "n_cores must be positive");
        assert!(max_latency > 0, "max_latency must be positive");
        use crate::policies::*;
        match self {
            PolicyKind::Fifo => Box::new(Fifo::new()),
            PolicyKind::RoundRobin => Box::new(RoundRobin::new(n_cores)),
            PolicyKind::Tdma => Box::new(Tdma::new(n_cores, max_latency)),
            PolicyKind::Lottery => Box::new(Lottery::uniform()),
            PolicyKind::RandomPermutation => Box::new(RandomPermutation::new(n_cores)),
            PolicyKind::FixedPriority => Box::new(FixedPriority::new()),
        }
    }

    /// Stable short name matching
    /// [`ArbitrationPolicy::name`].
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Fifo => "FIFO",
            PolicyKind::RoundRobin => "RR",
            PolicyKind::Tdma => "TDMA",
            PolicyKind::Lottery => "LOT",
            PolicyKind::RandomPermutation => "RP",
            PolicyKind::FixedPriority => "PRI",
        }
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_filter_accepts_everything() {
        let f = NoFilter::new();
        assert!(f.is_eligible(CoreId::from_index(0), 0));
        assert!(f.is_eligible(CoreId::from_index(63), 1_000_000));
        assert_eq!(f.name(), "none");
    }

    #[test]
    fn policy_kind_builds_all() {
        for kind in PolicyKind::ALL {
            let p = kind.build(4, 56);
            assert_eq!(p.name(), kind.name());
        }
    }

    #[test]
    fn policy_kind_names_unique() {
        use std::collections::HashSet;
        let names: HashSet<&str> = PolicyKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), PolicyKind::ALL.len());
    }

    #[test]
    fn random_sources_are_interchangeable() {
        let mut sim = SimRng::seed_from(1);
        let mut lfsr = LfsrBank::new(8, 1).unwrap();
        for n in 1..=16u64 {
            let a = RandomSource::next_below(&mut sim, n);
            let b = RandomSource::next_below(&mut lfsr, n);
            assert!(a < n);
            assert!(b < n);
        }
    }
}
