//! A split-transaction bus variant.
//!
//! The paper's Section III.C argues CBA matters even for buses *with*
//! split transactions: splitting homogenizes most request durations (the
//! bus is released while memory works), "but the worst-case situation,
//! having very long and very short requests, is possible since atomic
//! operations by definition cannot be split". This module implements that
//! substrate so the claim can be tested instead of asserted:
//!
//! * [`SplitRequest::Immediate`] — short transaction served on the bus
//!   (L2 hit): holds the bus for its duration, like the non-split model;
//! * [`SplitRequest::Split`] — memory-bound transaction: a command phase
//!   holds the bus briefly, the bus is *released* during the memory
//!   access (a single-channel memory controller serializes these), and a
//!   response phase re-acquires the bus with response priority;
//! * [`SplitRequest::Atomic`] — unsplittable read-modify-write: occupies
//!   the bus end-to-end for two memory accesses, exactly like the
//!   non-split worst case.
//!
//! [`SplitBus`] composes the existing [`Bus`] (arbitration policy +
//! eligibility filter apply to bus *acquisitions*, so CBA budgets drain
//! only for cycles actually held — the correct bandwidth notion on a
//! split bus) with a FIFO memory channel.

use crate::bus::{Bus, BusConfig};
use crate::policy::ArbitrationPolicy;
use crate::{BusError, BusRequest, RequestKind};
use sim_core::{CoreId, Cycle};
use std::collections::VecDeque;

/// One request on the split bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitRequest {
    /// Served entirely on the bus (e.g. an L2 hit of `duration` cycles).
    Immediate {
        /// Bus hold time.
        duration: u32,
    },
    /// Command phase + off-bus memory access + response phase.
    Split,
    /// Unsplittable atomic: holds the bus for `duration` cycles
    /// (command + two memory accesses + response, fused).
    Atomic {
        /// Total bus hold time.
        duration: u32,
    },
}

/// Configuration of the split bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitBusConfig {
    /// Number of cores.
    pub n_cores: usize,
    /// MaxL for the arbiter (the atomic duration dominates).
    pub max_latency: u32,
    /// Bus cycles of a command or response phase.
    pub phase_cycles: u32,
    /// Off-bus memory access latency (single channel, FIFO).
    pub mem_latency: u32,
}

impl SplitBusConfig {
    /// The paper-equivalent platform: 4 cores, 5-cycle phases, 28-cycle
    /// memory, 56-cycle atomics.
    pub fn paper() -> Self {
        SplitBusConfig {
            n_cores: 4,
            max_latency: 56,
            phase_cycles: 5,
            mem_latency: 28,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`BusError::InvalidConfig`] if any field is zero or the
    /// phase exceeds MaxL.
    pub fn validate(&self) -> Result<(), BusError> {
        if self.n_cores == 0 {
            return Err(BusError::InvalidConfig("n_cores must be positive".into()));
        }
        if self.phase_cycles == 0 || self.mem_latency == 0 || self.max_latency == 0 {
            return Err(BusError::InvalidConfig(
                "phase, memory and max latencies must be positive".into(),
            ));
        }
        if self.phase_cycles > self.max_latency {
            return Err(BusError::InvalidConfig("phase cannot exceed MaxL".into()));
        }
        Ok(())
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CoreState {
    Idle,
    /// Waiting for / holding the bus for an immediate or atomic request.
    OnBus,
    /// Command phase posted or in flight.
    Command,
    /// Queued at / being served by the memory channel (`done_at`).
    Memory,
    /// Response phase pending arbitration or in flight.
    Response,
}

/// Completion report: the split request of `core` fully finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitCompletion {
    /// The requesting core.
    pub core: CoreId,
}

/// The split-transaction bus.
///
/// # Example
///
/// ```
/// use cba_bus::split::{SplitBus, SplitBusConfig, SplitRequest};
/// use cba_bus::{BusModel, PolicyKind};
/// use sim_core::CoreId;
///
/// let mut bus = SplitBus::new(SplitBusConfig::paper(),
///                             PolicyKind::RoundRobin.build(4, 56))?;
/// let c0 = CoreId::from_index(0);
/// bus.post(c0, SplitRequest::Split)?;
/// let mut done_at = None;
/// for now in 0..200u64 {
///     for c in bus.tick(now) {
///         if c.core == c0 { done_at = Some(now); }
///     }
/// }
/// // 5-cycle command + 28-cycle memory + 5-cycle response ≈ 38 cycles,
/// // but the bus itself was held for only 10 of them.
/// assert!(done_at.unwrap() < 45);
/// assert_eq!(bus.inner().trace().busy_cycles(c0), 10);
/// # Ok::<(), cba_bus::BusError>(())
/// ```
#[derive(Debug)]
pub struct SplitBus {
    config: SplitBusConfig,
    inner: Bus,
    states: Vec<CoreState>,
    /// Memory channel: FIFO of cores whose access is queued; head is in
    /// service until `mem_done_at`.
    mem_queue: VecDeque<CoreId>,
    mem_done_at: Option<Cycle>,
    /// Responses waiting for the bus (served with priority, FIFO).
    resp_queue: VecDeque<CoreId>,
    /// Requests accepted by `post` awaiting submission at the next tick.
    pending_posts: Vec<(CoreId, u32, RequestKind, bool)>,
}

impl SplitBus {
    /// Creates a split bus with the given arbitration policy.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation failures.
    pub fn new(
        config: SplitBusConfig,
        policy: Box<dyn ArbitrationPolicy>,
    ) -> Result<Self, BusError> {
        config.validate()?;
        Ok(SplitBus {
            inner: Bus::new(BusConfig::new(config.n_cores, config.max_latency)?, policy),
            states: vec![CoreState::Idle; config.n_cores],
            mem_queue: VecDeque::new(),
            mem_done_at: None,
            resp_queue: VecDeque::new(),
            pending_posts: Vec::new(),
            config,
        })
    }

    /// Replaces the eligibility filter of the underlying bus (budgets
    /// drain for held bus cycles only).
    pub fn set_filter(&mut self, filter: Box<dyn crate::policy::EligibilityFilter>) {
        self.inner.set_filter(filter);
    }

    /// Starts watching the underlying bus's eligibility filter for
    /// verdict flips (see [`Bus::enable_flip_probe`]).
    pub fn enable_flip_probe(&mut self) {
        self.inner.enable_flip_probe();
    }

    /// The underlying bus (occupancy trace, wait statistics).
    pub fn inner(&self) -> &Bus {
        &self.inner
    }

    /// Whether `core` can accept a new request.
    pub fn is_idle(&self, core: CoreId) -> bool {
        self.states[core.index()] == CoreState::Idle
    }

    /// Posts a request for `core`.
    ///
    /// # Errors
    ///
    /// Returns [`BusError::AlreadyPending`] if the core's previous request
    /// has not completed, or duration/core validation errors from the
    /// underlying bus model.
    pub fn post(&mut self, core: CoreId, request: SplitRequest) -> Result<(), BusError> {
        if core.index() >= self.config.n_cores {
            return Err(BusError::UnknownCore(core));
        }
        if !self.is_idle(core) {
            return Err(BusError::AlreadyPending(core));
        }
        // The actual bus posting happens inside tick (we need `now`); store
        // intent in the state machine.
        self.states[core.index()] = match request {
            SplitRequest::Immediate { duration } => {
                validate_duration(duration, self.config.max_latency)?;
                self.pending_posts
                    .push((core, duration, RequestKind::L2ReadHit, false));
                CoreState::OnBus
            }
            SplitRequest::Atomic { duration } => {
                validate_duration(duration, self.config.max_latency)?;
                self.pending_posts
                    .push((core, duration, RequestKind::Atomic, false));
                CoreState::OnBus
            }
            SplitRequest::Split => {
                self.pending_posts.push((
                    core,
                    self.config.phase_cycles,
                    RequestKind::L2MissClean,
                    true,
                ));
                CoreState::Command
            }
        };
        Ok(())
    }

    /// Phase 1 of cycle `now`: reports the split request (if any) that
    /// fully completed at `now`, advances the memory channel, and turns
    /// finished memory accesses into privileged response-phase
    /// reservations.
    pub fn begin_cycle(&mut self, now: Cycle) -> Option<SplitCompletion> {
        let mut completion = None;

        // Bus completion drives the per-core state machine.
        if let Some(done) = self.inner.begin_cycle(now) {
            let idx = done.core.index();
            match self.states[idx] {
                CoreState::OnBus | CoreState::Response => {
                    self.states[idx] = CoreState::Idle;
                    completion = Some(SplitCompletion { core: done.core });
                }
                CoreState::Command => {
                    // Command phase finished: queue the memory access.
                    self.states[idx] = CoreState::Memory;
                    self.mem_queue.push_back(done.core);
                }
                CoreState::Memory | CoreState::Idle => {
                    unreachable!("bus completion for a core not on the bus")
                }
            }
        }

        // Memory channel: start/finish accesses (single channel, FIFO).
        if let Some(done_at) = self.mem_done_at {
            if now >= done_at {
                let core = self.mem_queue.pop_front().expect("head in service");
                self.mem_done_at = None;
                // Response phase needs the bus again.
                self.resp_queue.push_back(core);
            }
        }
        if self.mem_done_at.is_none() && !self.mem_queue.is_empty() {
            self.mem_done_at = Some(now + self.config.mem_latency as Cycle);
        }

        // Responses re-acquire the bus through the privileged port: they
        // already won arbitration for the transfer during their command
        // phase, so they are served FIFO ahead of fresh requests and are
        // not budget-gated (budgets still drain while they hold the bus).
        while let Some(core) = self.resp_queue.pop_front() {
            self.inner
                .post_privileged(
                    BusRequest::new(
                        core,
                        self.config.phase_cycles,
                        RequestKind::L2MissClean,
                        now,
                    )
                    .expect("validated phase"),
                )
                .expect("validated core and phase");
            self.states[core.index()] = CoreState::Response;
        }

        completion
    }

    /// Phase 3 of cycle `now`: submits the requests accepted by
    /// [`SplitBus::post`] since the last cycle and runs the underlying
    /// bus's arbitration. Returns the core granted the bus at `now`, if
    /// any.
    pub fn end_cycle(&mut self, now: Cycle) -> Option<CoreId> {
        let posts = std::mem::take(&mut self.pending_posts);
        for (core, duration, kind, _split) in posts {
            self.inner
                .post(BusRequest::new(core, duration, kind, now).expect("validated duration"))
                .expect("state machine enforces one outstanding request");
        }
        self.inner.end_cycle(now)
    }

    /// The split bus's event horizon (see
    /// [`BusModel::next_event`](sim_core::BusModel::next_event)): the
    /// earlier of the underlying bus's event and the memory channel's
    /// completion. Any queued hand-off (an accepted post awaiting
    /// submission, a response awaiting its privileged reservation, or a
    /// memory access awaiting service) resolves next cycle, so those
    /// states report `now + 1` (no skipping).
    pub fn next_event(&mut self, now: Cycle) -> Option<Cycle> {
        if !self.pending_posts.is_empty() || !self.resp_queue.is_empty() {
            return Some(now + 1);
        }
        if self.mem_done_at.is_none() && !self.mem_queue.is_empty() {
            return Some(now + 1);
        }
        let inner = self.inner.next_event(now)?;
        Some(match self.mem_done_at {
            Some(t) => inner.min(t),
            None => inner,
        })
    }

    /// Bulk-advances the uneventful range on the underlying bus; the split
    /// bus's own state machines are event-driven and have nothing to
    /// account per cycle.
    pub fn advance(&mut self, from: Cycle, to: Cycle) {
        self.inner.advance(from, to);
    }

    /// Resets the split bus for a fresh run, reusing the underlying bus's
    /// trace/statistics buffers and this layer's queues (see
    /// [`Bus::reset`]).
    pub fn reset(&mut self) {
        self.inner.reset();
        self.states.fill(CoreState::Idle);
        self.mem_queue.clear();
        self.mem_done_at = None;
        self.resp_queue.clear();
        self.pending_posts.clear();
    }
}

/// The split bus speaks the same cycle protocol as [`Bus`]; requests are
/// addressed per core, so [`BusModel::post`](sim_core::BusModel::post)
/// takes a `(core, request)` pair.
impl sim_core::BusModel for SplitBus {
    type Request = (CoreId, SplitRequest);
    type Completion = SplitCompletion;
    type Error = BusError;

    fn begin_cycle(&mut self, now: Cycle) -> Option<SplitCompletion> {
        SplitBus::begin_cycle(self, now)
    }

    fn post(&mut self, (core, request): (CoreId, SplitRequest)) -> Result<(), BusError> {
        SplitBus::post(self, core, request)
    }

    fn end_cycle(&mut self, now: Cycle) -> Option<CoreId> {
        SplitBus::end_cycle(self, now)
    }

    fn owner(&self) -> Option<CoreId> {
        self.inner.owner()
    }

    fn trace(&self) -> &sim_core::trace::GrantTrace {
        self.inner.trace()
    }

    fn next_event(&mut self, now: Cycle) -> Option<Cycle> {
        SplitBus::next_event(self, now)
    }

    fn advance(&mut self, from: Cycle, to: Cycle) {
        SplitBus::advance(self, from, to)
    }

    fn drain_events(&mut self, sink: &mut dyn FnMut(sim_core::ModelEvent)) {
        sim_core::BusModel::drain_events(&mut self.inner, sink)
    }
}

fn validate_duration(duration: u32, maxl: u32) -> Result<(), BusError> {
    if duration == 0 || duration > maxl {
        Err(BusError::DurationOutOfRange {
            got: duration,
            max: maxl,
        })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PolicyKind;
    use sim_core::BusModel;

    fn c(i: usize) -> CoreId {
        CoreId::from_index(i)
    }

    fn mk() -> SplitBus {
        SplitBus::new(SplitBusConfig::paper(), PolicyKind::RoundRobin.build(4, 56)).unwrap()
    }

    #[test]
    fn config_validation() {
        let mut cfg = SplitBusConfig::paper();
        cfg.phase_cycles = 0;
        assert!(cfg.validate().is_err());
        cfg = SplitBusConfig::paper();
        cfg.phase_cycles = 57;
        assert!(cfg.validate().is_err());
        assert!(SplitBusConfig::paper().validate().is_ok());
    }

    #[test]
    fn split_transaction_releases_the_bus_during_memory() {
        let mut bus = mk();
        bus.post(c(0), SplitRequest::Split).unwrap();
        let mut done = None;
        for now in 0..200u64 {
            for comp in bus.tick(now) {
                if comp.core == c(0) {
                    done = Some(now);
                }
            }
        }
        let done = done.expect("split request completes");
        // cmd 5 + mem 28 + response 5 (+ re-arbitration) ≈ 38-40 cycles.
        assert!((36..=42).contains(&done), "done at {done}");
        // Bus held only for the two 5-cycle phases.
        assert_eq!(bus.inner().trace().busy_cycles(c(0)), 10);
        assert_eq!(bus.inner().trace().slots(c(0)), 2);
    }

    #[test]
    fn immediate_and_atomic_hold_end_to_end() {
        let mut bus = mk();
        bus.post(c(0), SplitRequest::Immediate { duration: 5 })
            .unwrap();
        bus.post(c(1), SplitRequest::Atomic { duration: 56 })
            .unwrap();
        for now in 0..200u64 {
            bus.tick(now);
        }
        assert_eq!(bus.inner().trace().busy_cycles(c(0)), 5);
        assert_eq!(bus.inner().trace().slots(c(0)), 1);
        assert_eq!(bus.inner().trace().busy_cycles(c(1)), 56);
        assert_eq!(bus.inner().trace().slots(c(1)), 1);
    }

    #[test]
    fn memory_channel_serializes_concurrent_misses() {
        // Two split requests back to back: their memory accesses overlap on
        // the bus side but serialize at the single memory channel.
        let mut bus = mk();
        bus.post(c(0), SplitRequest::Split).unwrap();
        bus.post(c(1), SplitRequest::Split).unwrap();
        let mut done = [None, None];
        for now in 0..300u64 {
            for comp in bus.tick(now) {
                done[comp.core.index()] = Some(now);
            }
        }
        let d0 = done[0].unwrap();
        let d1 = done[1].unwrap();
        // Second finisher waits one extra memory access: ~28 later.
        assert!((d1 as i64 - d0 as i64).unsigned_abs() >= 25, "{d0} vs {d1}");
        // But both commands were on the bus within the first ~15 cycles:
        // the split bus overlaps command phases with memory service.
        assert!(d1.min(d0) <= 45);
    }

    #[test]
    fn double_post_rejected_until_completion() {
        let mut bus = mk();
        bus.post(c(0), SplitRequest::Split).unwrap();
        assert!(matches!(
            bus.post(c(0), SplitRequest::Split),
            Err(BusError::AlreadyPending(_))
        ));
        for now in 0..100u64 {
            bus.tick(now);
        }
        assert!(bus.is_idle(c(0)));
        assert!(bus.post(c(0), SplitRequest::Split).is_ok());
    }

    #[test]
    fn cba_filter_composes_with_the_split_bus() {
        // The credit filter applies to bus acquisitions: with three
        // atomic-hammering cores and one short-request core, no core may
        // exceed 1/N of the *bus* cycles.
        use crate::policy::EligibilityFilter;

        /// Minimal credit filter reimplementation is not needed — use a
        /// veto-free budget check through the real `cba` crate in the
        /// integration tests; here, verify the filter hook works at all on
        /// the split bus with a throttling filter.
        #[derive(Debug)]
        struct EveryOtherHundred;
        impl EligibilityFilter for EveryOtherHundred {
            fn name(&self) -> &'static str {
                "alt"
            }
            fn is_eligible(&self, core: CoreId, now: u64) -> bool {
                // Core 1 only eligible in even 100-cycle windows.
                core.index() != 1 || (now / 100) % 2 == 0
            }
        }
        let mut bus = mk();
        bus.set_filter(Box::new(EveryOtherHundred));
        bus.post(c(1), SplitRequest::Atomic { duration: 56 })
            .unwrap();
        // Posted at cycle 0 (eligible window), so it runs; repost in an
        // odd window and it must wait for the next even one.
        let mut completed_at = None;
        for now in 0..500u64 {
            if now == 130 && bus.is_idle(c(1)) {
                bus.post(c(1), SplitRequest::Atomic { duration: 56 })
                    .unwrap();
            }
            for _comp in bus.tick(now) {
                if now > 130 {
                    completed_at = completed_at.or(Some(now));
                }
            }
        }
        let done = completed_at.expect("second atomic completes");
        assert!(
            done >= 200 + 56,
            "filter must defer the grant to cycle 200+: {done}"
        );
    }

    #[test]
    fn next_event_covers_the_memory_channel() {
        let mut bus = mk();
        bus.post(c(0), SplitRequest::Split).unwrap();
        // The accepted post is submitted at the next tick: no skipping.
        assert_eq!(sim_core::BusModel::next_event(&mut bus, 0), Some(1));
        bus.tick(0); // command phase granted: bus busy [0, 5)
        assert_eq!(sim_core::BusModel::next_event(&mut bus, 0), Some(5));
        for now in 1..=5u64 {
            bus.tick(now);
        }
        // Command completed at 5 and the memory access entered service in
        // the same begin_cycle: the 28-cycle memory completion bounds the
        // horizon while the bus itself is idle.
        assert_eq!(sim_core::BusModel::next_event(&mut bus, 5), Some(5 + 28));
        // At the memory completion the response queues; the privileged
        // reservation then forbids skipping until it is granted.
        for now in 6..=33u64 {
            bus.tick(now);
        }
        assert_eq!(bus.inner().trace().slots(c(0)), 2, "response granted");
    }

    #[test]
    fn reset_clears_split_state_and_reuses_buffers() {
        let mut bus = mk();
        bus.post(c(0), SplitRequest::Split).unwrap();
        bus.post(c(1), SplitRequest::Atomic { duration: 56 })
            .unwrap();
        for now in 0..20u64 {
            bus.tick(now);
        }
        bus.reset();
        assert!(bus.is_idle(c(0)));
        assert!(bus.is_idle(c(1)));
        assert_eq!(bus.inner().trace().total_slots(), 0);
        assert_eq!(bus.inner().total_cycles(), 0);
        // A fresh run from cycle 0 behaves like a new bus.
        bus.post(c(0), SplitRequest::Immediate { duration: 5 })
            .unwrap();
        for now in 0..10u64 {
            bus.tick(now);
        }
        assert_eq!(bus.inner().trace().busy_cycles(c(0)), 5);
    }

    #[test]
    fn atomics_still_monopolize_a_split_bus() {
        // The paper's argument: with three cores issuing back-to-back
        // atomics, a short-request core on a *split* bus is starved just
        // like on the non-split one.
        let mut bus = mk();
        let horizon = 50_000u64;
        let mut short_done = 0u64;
        for now in 0..horizon {
            if bus.is_idle(c(0)) {
                bus.post(c(0), SplitRequest::Immediate { duration: 5 })
                    .unwrap();
            }
            for i in 1..4 {
                if bus.is_idle(c(i)) {
                    bus.post(c(i), SplitRequest::Atomic { duration: 56 })
                        .unwrap();
                }
            }
            for comp in bus.tick(now) {
                if comp.core == c(0) {
                    short_done += 1;
                }
            }
        }
        let share = bus.inner().trace().busy_cycles(c(0)) as f64 / horizon as f64;
        assert!(
            share < 0.05,
            "short-request core must be starved by atomics: {share}"
        );
        assert!(
            short_done > 0,
            "but not absolutely starved (RR is fair in slots)"
        );
    }
}
