//! The set of pending (posted, not yet granted) bus requests.
//!
//! Cores on the modeled platform are in-order and blocking: each core has at
//! most one arbitrable request outstanding. [`PendingSet`] is therefore a
//! fixed per-core slot array, and candidate lists handed to arbitration
//! policies are small (`<= n_cores`) and ordered by core index.

use crate::{BusError, BusRequest};
use sim_core::{CoreId, Cycle};

/// A lightweight view of one arbitrable request, handed to
/// [`ArbitrationPolicy::select`](crate::ArbitrationPolicy::select).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// The requesting core.
    pub core: CoreId,
    /// When the request became ready (FIFO arbitration orders by this).
    pub issued_at: Cycle,
    /// Bus hold time of the transaction.
    pub duration: u32,
}

impl From<&BusRequest> for Candidate {
    fn from(req: &BusRequest) -> Self {
        Candidate {
            core: req.core(),
            issued_at: req.issued_at(),
            duration: req.duration(),
        }
    }
}

/// Per-core pending-request slots (at most one per core).
#[derive(Debug, Clone, Default)]
pub struct PendingSet {
    slots: Vec<Option<BusRequest>>,
}

impl PendingSet {
    /// Creates an empty set for `n_cores` cores.
    pub fn new(n_cores: usize) -> Self {
        PendingSet {
            slots: vec![None; n_cores],
        }
    }

    /// Number of cores this set was sized for.
    pub fn n_cores(&self) -> usize {
        self.slots.len()
    }

    /// Inserts a request.
    ///
    /// # Errors
    ///
    /// * [`BusError::UnknownCore`] if the core is out of range;
    /// * [`BusError::AlreadyPending`] if the core already has a request.
    pub fn insert(&mut self, req: BusRequest) -> Result<(), BusError> {
        let idx = req.core().index();
        let slot = self
            .slots
            .get_mut(idx)
            .ok_or(BusError::UnknownCore(req.core()))?;
        if slot.is_some() {
            return Err(BusError::AlreadyPending(req.core()));
        }
        *slot = Some(req);
        Ok(())
    }

    /// Removes and returns the pending request of `core`, if any.
    pub fn remove(&mut self, core: CoreId) -> Option<BusRequest> {
        self.slots.get_mut(core.index()).and_then(Option::take)
    }

    /// The pending request of `core`, if any.
    pub fn get(&self, core: CoreId) -> Option<&BusRequest> {
        self.slots.get(core.index()).and_then(Option::as_ref)
    }

    /// Whether `core` has a pending request.
    pub fn contains(&self, core: CoreId) -> bool {
        self.get(core).is_some()
    }

    /// Number of pending requests.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Whether no request is pending.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(Option::is_none)
    }

    /// Iterates over pending requests in core-index order.
    pub fn iter(&self) -> impl Iterator<Item = &BusRequest> {
        self.slots.iter().filter_map(Option::as_ref)
    }

    /// Collects candidates (core-index order) into `out`, clearing it first.
    ///
    /// Taking a scratch buffer keeps the per-cycle arbitration loop
    /// allocation-free.
    pub fn candidates_into(&self, out: &mut Vec<Candidate>) {
        out.clear();
        out.extend(self.iter().map(Candidate::from));
    }

    /// Clears all pending requests (used when resetting a platform between
    /// Monte-Carlo runs).
    pub fn clear(&mut self) {
        self.slots.iter_mut().for_each(|s| *s = None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RequestKind;

    fn req(core: usize, dur: u32, at: Cycle) -> BusRequest {
        BusRequest::new(CoreId::from_index(core), dur, RequestKind::Synthetic, at).unwrap()
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut p = PendingSet::new(4);
        assert!(p.is_empty());
        p.insert(req(2, 5, 10)).unwrap();
        assert!(p.contains(CoreId::from_index(2)));
        assert_eq!(p.len(), 1);
        let r = p.remove(CoreId::from_index(2)).unwrap();
        assert_eq!(r.duration(), 5);
        assert!(p.is_empty());
        assert!(p.remove(CoreId::from_index(2)).is_none());
    }

    #[test]
    fn double_insert_rejected() {
        let mut p = PendingSet::new(4);
        p.insert(req(1, 5, 0)).unwrap();
        assert_eq!(
            p.insert(req(1, 6, 1)),
            Err(BusError::AlreadyPending(CoreId::from_index(1)))
        );
    }

    #[test]
    fn unknown_core_rejected() {
        let mut p = PendingSet::new(2);
        assert_eq!(
            p.insert(req(2, 5, 0)),
            Err(BusError::UnknownCore(CoreId::from_index(2)))
        );
    }

    #[test]
    fn candidates_are_core_ordered() {
        let mut p = PendingSet::new(4);
        p.insert(req(3, 7, 30)).unwrap();
        p.insert(req(0, 5, 50)).unwrap();
        p.insert(req(2, 6, 10)).unwrap();
        let mut out = Vec::new();
        p.candidates_into(&mut out);
        let cores: Vec<usize> = out.iter().map(|c| c.core.index()).collect();
        assert_eq!(cores, vec![0, 2, 3]);
        assert_eq!(out[1].issued_at, 10);
        assert_eq!(out[2].duration, 7);
    }

    #[test]
    fn clear_empties() {
        let mut p = PendingSet::new(2);
        p.insert(req(0, 5, 0)).unwrap();
        p.insert(req(1, 5, 0)).unwrap();
        p.clear();
        assert!(p.is_empty());
    }
}
