//! A hierarchical multi-bus fabric: cluster buses behind store-and-forward
//! bridges onto a backbone memory bus, with an independent arbitration
//! point — policy **and** optional CBA/H-CBA eligibility filter — at every
//! segment.
//!
//! # Topology
//!
//! ```text
//!  cores 0..m ──► cluster bus 0 ──► bridge 0 ─┐
//!  cores m..2m ─► cluster bus 1 ──► bridge 1 ─┼─► backbone bus ─► memory
//!  ...                                        │
//!  cores ..n ──► cluster bus k-1 ► bridge k-1 ┘
//! ```
//!
//! The paper defines its credit-based arbitration per arbitration point
//! ("only those whose core has MaxL budget can be arbitrated; then, any
//! arbitration policy can be applied"), so a clustered platform simply
//! instantiates the mechanism once per segment: each cluster bus arbitrates
//! its local cores, and the backbone arbitrates the *bridges* — one per
//! cluster — which makes per-cluster bandwidth weights a first-class
//! configuration (H-CBA across clusters, CBA within them).
//!
//! # Transaction lifecycle
//!
//! A request posted by global core `c` (cluster `c / m`, local index
//! `c % m`):
//!
//! 1. wins arbitration on its **cluster bus** and holds it for the request
//!    duration (the transfer to the bridge);
//! 2. is **stored and forwarded** by the bridge: after `bridge_latency`
//!    cycles it is eligible to enter backbone arbitration. Each bridge
//!    keeps a bounded request queue (`bridge_depth`); a cluster bus is
//!    *gated* (no new grants) while a completing transfer would overflow
//!    the queue — backpressure, not loss;
//! 3. wins arbitration on the **backbone** (the bridge competes as one
//!    requester) and holds it for the duration (the memory access);
//! 4. crosses the bridge back (`bridge_latency` again, bounded response
//!    queue reserved before the backbone post) and completes at the core.
//!
//! Every phase is deterministic, so the fabric composes with the
//! event-horizon engine: [`Fabric::next_event`] is the minimum over the
//! segment horizons and the bridge store-and-forward wakeups, and it
//! declines (`None`) whenever any segment declines — falling back to the
//! per-cycle loop, which stays bit-identical.
//!
//! # Worked example: a 2 × 4-core fabric
//!
//! Two clusters of four cores each, round-robin everywhere, 2-cycle
//! bridges. Core 5 (cluster 1, local core 1) issues one 6-cycle
//! transaction; it crosses cluster bus → bridge → backbone → bridge, so
//! it completes after 6 + 2 + 6 + 2 = 16 cycles:
//!
//! ```
//! use cba_bus::fabric::{Fabric, FabricConfig};
//! use cba_bus::{BusRequest, PolicyKind, RequestKind};
//! use sim_core::{CoreId, Cycle};
//!
//! let config = FabricConfig::new(2, 4, 56, 2, 2)?;
//! let cluster_policies = (0..2).map(|_| PolicyKind::RoundRobin.build(4, 56)).collect();
//! let mut fabric = Fabric::new(config, cluster_policies,
//!                              PolicyKind::RoundRobin.build(2, 56))?;
//!
//! let c5 = CoreId::from_index(5);
//! fabric.post(BusRequest::new(c5, 6, RequestKind::Synthetic, 0)?)?;
//! let mut done: Option<(Cycle, CoreId)> = None;
//! for now in 0..100u64 {
//!     if let Some(ct) = fabric.begin_cycle(now) {
//!         done = Some((now, ct.core));
//!     }
//!     fabric.end_cycle(now);
//! }
//! assert_eq!(done, Some((16, c5)));
//! // The transaction held its cluster bus and the backbone for 6 cycles
//! // each; the fabric-wide trace attributes the backbone usage to core 5.
//! assert_eq!(fabric.cluster_bus(1).trace().busy_cycles(CoreId::from_index(1)), 6);
//! assert_eq!(fabric.trace().busy_cycles(c5), 6);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::bus::{Bus, BusConfig, CompletedTransaction, WaitStats};
use crate::policy::{ArbitrationPolicy, EligibilityFilter, RandomSource};
use crate::{BusError, BusRequest, RequestKind, RequestPort};
use sim_core::trace::GrantTrace;
use sim_core::{CoreId, Cycle};
use std::collections::VecDeque;

/// Static configuration of a [`Fabric`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FabricConfig {
    clusters: usize,
    cores_per_cluster: usize,
    max_latency: u32,
    bridge_latency: u32,
    bridge_depth: usize,
}

impl FabricConfig {
    /// Creates a configuration for `clusters` cluster buses of
    /// `cores_per_cluster` cores each, joined to the backbone by bridges
    /// with `bridge_latency`-cycle store-and-forward delay per direction
    /// and `bridge_depth`-entry request/response queues. `max_latency` is
    /// the MaxL shared by every segment.
    ///
    /// # Errors
    ///
    /// Returns [`BusError::InvalidConfig`] if any count is zero, the total
    /// core count (or the cluster count, which indexes the backbone)
    /// exceeds [`CoreId::MAX_CORES`], or `max_latency` is out of range.
    pub fn new(
        clusters: usize,
        cores_per_cluster: usize,
        max_latency: u32,
        bridge_latency: u32,
        bridge_depth: usize,
    ) -> Result<Self, BusError> {
        if clusters == 0 || cores_per_cluster == 0 {
            return Err(BusError::InvalidConfig(
                "clusters and cores_per_cluster must be positive".into(),
            ));
        }
        let total = clusters.saturating_mul(cores_per_cluster);
        if total > CoreId::MAX_CORES {
            return Err(BusError::InvalidConfig(format!(
                "{clusters} x {cores_per_cluster} cores exceed the {}-core limit",
                CoreId::MAX_CORES
            )));
        }
        if bridge_latency == 0 {
            return Err(BusError::InvalidConfig(
                "bridge_latency must be at least 1 (store-and-forward takes a cycle)".into(),
            ));
        }
        if bridge_depth == 0 {
            return Err(BusError::InvalidConfig(
                "bridge_depth must be at least 1".into(),
            ));
        }
        // Delegates max_latency validation (and clusters <= MAX_CORES,
        // since clusters index the backbone).
        BusConfig::new(clusters, max_latency)?;
        BusConfig::new(cores_per_cluster, max_latency)?;
        Ok(FabricConfig {
            clusters,
            cores_per_cluster,
            max_latency,
            bridge_latency,
            bridge_depth,
        })
    }

    /// Number of cluster buses.
    pub fn clusters(&self) -> usize {
        self.clusters
    }

    /// Cores on each cluster bus.
    pub fn cores_per_cluster(&self) -> usize {
        self.cores_per_cluster
    }

    /// Total core count (`clusters * cores_per_cluster`).
    pub fn n_cores(&self) -> usize {
        self.clusters * self.cores_per_cluster
    }

    /// MaxL: the longest transaction duration any segment accepts.
    pub fn max_latency(&self) -> u32 {
        self.max_latency
    }

    /// Store-and-forward delay of a bridge crossing, per direction.
    pub fn bridge_latency(&self) -> u32 {
        self.bridge_latency
    }

    /// Capacity of each bridge's request and response queues.
    pub fn bridge_depth(&self) -> usize {
        self.bridge_depth
    }
}

/// A transaction crossing a bridge (either direction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Forwarded {
    /// The originating global core.
    core: CoreId,
    duration: u32,
    kind: RequestKind,
    /// First cycle the transaction is usable on the far side.
    ready_at: Cycle,
}

/// One store-and-forward bridge between a cluster bus and the backbone.
#[derive(Debug, Default)]
struct Bridge {
    /// Requests that fully crossed their cluster bus, oldest first
    /// (bounded by `bridge_depth` via cluster-bus gating).
    requests: VecDeque<Forwarded>,
    /// The request currently posted on / being served by the backbone
    /// (at most one per bridge; FIFO within the bridge).
    outstanding: Option<Forwarded>,
    /// Responses returning to the cluster, oldest first (bounded by
    /// `bridge_depth` via reservation before the backbone post).
    responses: VecDeque<Forwarded>,
}

/// The hierarchical multi-bus fabric; see the [module docs](self) for the
/// topology, the transaction lifecycle and a worked example.
#[derive(Debug)]
pub struct Fabric {
    config: FabricConfig,
    clusters: Vec<Bus>,
    backbone: Bus,
    bridges: Vec<Bridge>,
    /// Per global core: a request is somewhere in the pipeline (posted,
    /// on a segment, crossing a bridge) and has not been delivered yet.
    in_flight: Vec<bool>,
    /// Fabric-wide trace: backbone grants attributed to the *originating*
    /// core — per-core usage of the shared memory path.
    trace: GrantTrace,
    in_cycle: bool,
    last_cycle: Option<Cycle>,
}

impl Fabric {
    /// Creates a fabric with one arbitration policy per cluster bus plus
    /// the backbone's, no eligibility filters and deterministic default
    /// random sources. Filters and random sources are installed per
    /// segment via the `set_*` methods.
    ///
    /// # Errors
    ///
    /// Returns [`BusError::InvalidConfig`] if `cluster_policies` does not
    /// have exactly one entry per cluster.
    pub fn new(
        config: FabricConfig,
        cluster_policies: Vec<Box<dyn ArbitrationPolicy>>,
        backbone_policy: Box<dyn ArbitrationPolicy>,
    ) -> Result<Self, BusError> {
        if cluster_policies.len() != config.clusters {
            return Err(BusError::InvalidConfig(format!(
                "{} cluster policies for {} clusters",
                cluster_policies.len(),
                config.clusters
            )));
        }
        let cluster_cfg = BusConfig::new(config.cores_per_cluster, config.max_latency)?;
        let backbone_cfg = BusConfig::new(config.clusters, config.max_latency)?;
        Ok(Fabric {
            clusters: cluster_policies
                .into_iter()
                .map(|p| Bus::new(cluster_cfg, p))
                .collect(),
            backbone: Bus::new(backbone_cfg, backbone_policy),
            bridges: (0..config.clusters).map(|_| Bridge::default()).collect(),
            in_flight: vec![false; config.n_cores()],
            trace: GrantTrace::counting(config.n_cores()),
            in_cycle: false,
            last_cycle: None,
            config,
        })
    }

    /// The static configuration.
    pub fn config(&self) -> &FabricConfig {
        &self.config
    }

    /// Replaces cluster `k`'s eligibility filter (sized for
    /// `cores_per_cluster` local cores).
    pub fn set_cluster_filter(&mut self, k: usize, filter: Box<dyn EligibilityFilter>) {
        self.clusters[k].set_filter(filter);
    }

    /// Replaces the backbone's eligibility filter (sized for `clusters`
    /// contenders — one per bridge).
    pub fn set_backbone_filter(&mut self, filter: Box<dyn EligibilityFilter>) {
        self.backbone.set_filter(filter);
    }

    /// Replaces cluster `k`'s random-bit source.
    pub fn set_cluster_random_source(&mut self, k: usize, rng: Box<dyn RandomSource>) {
        self.clusters[k].set_random_source(rng);
    }

    /// Replaces the backbone's random-bit source.
    pub fn set_backbone_random_source(&mut self, rng: Box<dyn RandomSource>) {
        self.backbone.set_random_source(rng);
    }

    /// Switches the fabric-wide trace to full recording (stores every
    /// backbone grant with its originating core).
    pub fn enable_recording_trace(&mut self) {
        self.trace = GrantTrace::recording(self.config.n_cores());
    }

    /// Cluster bus `k` (local traces, wait statistics, occupancy).
    pub fn cluster_bus(&self, k: usize) -> &Bus {
        &self.clusters[k]
    }

    /// The backbone bus (per-bridge traces and statistics).
    pub fn backbone(&self) -> &Bus {
        &self.backbone
    }

    /// The cluster index of a global core.
    pub fn cluster_of(&self, core: CoreId) -> usize {
        core.index() / self.config.cores_per_cluster
    }

    /// The local (cluster-bus) id of a global core.
    pub fn local_id(&self, core: CoreId) -> CoreId {
        CoreId::from_index(core.index() % self.config.cores_per_cluster)
    }

    /// Whether `core` has a transaction anywhere in the pipeline.
    pub fn is_in_flight(&self, core: CoreId) -> bool {
        self.in_flight.get(core.index()).copied().unwrap_or(false)
    }

    /// Cluster-bus grant-latency statistics for `core`'s cluster (query
    /// with [`Fabric::local_id`]).
    pub fn local_wait_stats(&self, core: CoreId) -> &WaitStats {
        self.clusters[self.cluster_of(core)].wait_stats()
    }

    /// The fabric-wide trace: backbone grants per originating core.
    pub fn trace(&self) -> &GrantTrace {
        &self.trace
    }

    /// Backbone cycles carrying no transaction (among those ticked).
    pub fn idle_cycles(&self) -> u64 {
        self.backbone.idle_cycles()
    }

    /// Total cycles ticked.
    pub fn total_cycles(&self) -> u64 {
        self.backbone.total_cycles()
    }

    /// The originating core of the transaction holding the backbone, if
    /// any.
    pub fn owner(&self) -> Option<CoreId> {
        self.backbone.owner().map(|bridge| {
            self.bridges[bridge.index()]
                .outstanding
                .expect("busy bridge has an outstanding request")
                .core
        })
    }

    /// Posts a request by a global core (phase 2 of the cycle protocol).
    ///
    /// # Errors
    ///
    /// * [`BusError::UnknownCore`] — core outside the fabric;
    /// * [`BusError::DurationOutOfRange`] — duration above MaxL;
    /// * [`BusError::AlreadyPending`] — the core already has a transaction
    ///   in flight (anywhere in the pipeline).
    pub fn post(&mut self, req: BusRequest) -> Result<(), BusError> {
        let idx = req.core().index();
        if idx >= self.config.n_cores() {
            return Err(BusError::UnknownCore(req.core()));
        }
        if req.duration() > self.config.max_latency {
            return Err(BusError::DurationOutOfRange {
                got: req.duration(),
                max: self.config.max_latency,
            });
        }
        if self.in_flight[idx] {
            return Err(BusError::AlreadyPending(req.core()));
        }
        let k = self.cluster_of(req.core());
        let local = self.local_id(req.core());
        self.clusters[k].post(
            BusRequest::new(local, req.duration(), req.kind(), req.issued_at())
                .expect("validated duration"),
        )?;
        self.in_flight[idx] = true;
        Ok(())
    }

    /// Withdraws `core`'s request if it is still pending on its cluster
    /// bus (a transaction that already won cluster arbitration cannot be
    /// recalled from the pipeline).
    pub fn withdraw(&mut self, core: CoreId) -> Option<BusRequest> {
        if !self.is_in_flight(core) {
            return None;
        }
        let k = self.cluster_of(core);
        let local = self.local_id(core);
        let req = self.clusters[k].withdraw(local)?;
        self.in_flight[core.index()] = false;
        Some(
            BusRequest::new(core, req.duration(), req.kind(), req.issued_at())
                .expect("validated duration"),
        )
    }

    /// Phase 1 of cycle `now`: delivers a response that finished crossing
    /// its bridge, lands cluster-bus completions in their bridge request
    /// queues, and turns backbone completions into returning responses.
    ///
    /// At most one completion is reported per cycle; this is lossless
    /// because responses originate from backbone completions (at most one
    /// per cycle) and all bridges share one crossing latency, so no two
    /// responses become ready on the same cycle.
    ///
    /// # Panics
    ///
    /// Panics if cycles are not visited in strictly increasing order or
    /// the phases are called out of order.
    pub fn begin_cycle(&mut self, now: Cycle) -> Option<CompletedTransaction> {
        assert!(!self.in_cycle, "begin_cycle called twice for one cycle");
        if let Some(last) = self.last_cycle {
            assert!(
                now > last,
                "cycles must strictly increase ({last} -> {now})"
            );
        }
        self.in_cycle = true;
        self.last_cycle = Some(now);

        // 1. Deliver the oldest ready response fabric-wide.
        let mut best: Option<(Cycle, usize)> = None;
        for (k, bridge) in self.bridges.iter().enumerate() {
            if let Some(front) = bridge.responses.front() {
                let older = match best {
                    None => true,
                    Some((t, _)) => front.ready_at < t,
                };
                if front.ready_at <= now && older {
                    best = Some((front.ready_at, k));
                }
            }
        }
        let completion = best.map(|(_, k)| {
            let f = self.bridges[k]
                .responses
                .pop_front()
                .expect("front checked above");
            self.in_flight[f.core.index()] = false;
            CompletedTransaction {
                core: f.core,
                kind: f.kind,
                duration: f.duration,
            }
        });

        // 2. Cluster transfers finishing at `now` enter their bridge's
        //    request queue after the store-and-forward delay. The queue
        //    has room by the gating invariant of `end_cycle`.
        for (k, bus) in self.clusters.iter_mut().enumerate() {
            if let Some(done) = bus.begin_cycle(now) {
                let global =
                    CoreId::from_index(k * self.config.cores_per_cluster + done.core.index());
                self.bridges[k].requests.push_back(Forwarded {
                    core: global,
                    duration: done.duration,
                    kind: done.kind,
                    ready_at: now + self.config.bridge_latency as Cycle,
                });
                debug_assert!(self.bridges[k].requests.len() <= self.config.bridge_depth);
            }
        }

        // 3. A backbone transfer finishing at `now` heads back across its
        //    bridge as a response (slot reserved before the post).
        if let Some(done) = self.backbone.begin_cycle(now) {
            let k = done.core.index();
            let f = self.bridges[k]
                .outstanding
                .take()
                .expect("backbone completion without an outstanding bridge request");
            self.bridges[k].responses.push_back(Forwarded {
                ready_at: now + self.config.bridge_latency as Cycle,
                ..f
            });
            debug_assert!(self.bridges[k].responses.len() <= self.config.bridge_depth);
        }
        completion
    }

    /// Phase 3 of cycle `now`: bridges with a crossed request (and a free
    /// response slot) enter backbone arbitration, the backbone arbitrates,
    /// then every cluster bus arbitrates under request-queue backpressure.
    /// Returns the *originating core* of a freshly granted backbone
    /// transfer, if any.
    ///
    /// # Panics
    ///
    /// Panics if called without a matching [`Fabric::begin_cycle`].
    pub fn end_cycle(&mut self, now: Cycle) -> Option<CoreId> {
        assert!(self.in_cycle, "end_cycle without begin_cycle");
        assert_eq!(
            self.last_cycle,
            Some(now),
            "end_cycle for a different cycle"
        );
        self.in_cycle = false;

        // 1. Bridge heads that finished crossing compete on the backbone:
        //    one outstanding request per bridge, response slot reserved so
        //    the way back is never blocked.
        for (k, bridge) in self.bridges.iter_mut().enumerate() {
            if bridge.outstanding.is_some() {
                continue;
            }
            let ready = bridge.requests.front().is_some_and(|f| f.ready_at <= now);
            if ready && bridge.responses.len() < self.config.bridge_depth {
                let f = bridge.requests.pop_front().expect("front checked above");
                self.backbone
                    .post(
                        BusRequest::new(CoreId::from_index(k), f.duration, f.kind, now)
                            .expect("validated duration"),
                    )
                    .expect("one outstanding request per bridge");
                bridge.outstanding = Some(f);
            }
        }

        // 2. Backbone arbitration; the fabric-wide trace attributes the
        //    grant to the originating core.
        let granted = self.backbone.end_cycle(now).map(|bridge| {
            let f = self.bridges[bridge.index()]
                .outstanding
                .expect("granted bridge has an outstanding request");
            self.trace.record(now, f.core, f.duration);
            f.core
        });

        // 3. Cluster arbitration under backpressure: a grant adds one
        //    in-flight transfer destined for the request queue, so it is
        //    allowed only while queue + transfer stay within depth.
        for (k, bus) in self.clusters.iter_mut().enumerate() {
            let occupied = self.bridges[k].requests.len() + usize::from(bus.owner().is_some());
            bus.end_cycle_gated(now, occupied < self.config.bridge_depth);
        }
        granted
    }

    /// The fabric's event horizon (see
    /// [`BusModel::next_event`](sim_core::BusModel::next_event)): the
    /// minimum over every segment's horizon and the bridge
    /// store-and-forward wakeups (a request finishing its crossing, a
    /// response becoming deliverable). Declines (`None`) whenever any
    /// segment declines.
    pub fn next_event(&mut self, now: Cycle) -> Option<Cycle> {
        let mut horizon = Cycle::MAX;
        for bridge in &self.bridges {
            if bridge.outstanding.is_none() {
                if let Some(front) = bridge.requests.front() {
                    // Next posting attempt: when the crossing ends, or next
                    // cycle if it already has (blocked on response space —
                    // re-checked every cycle, conservatively).
                    horizon = horizon.min(front.ready_at.max(now + 1));
                }
            }
            if let Some(front) = bridge.responses.front() {
                horizon = horizon.min(front.ready_at.max(now + 1));
            }
        }
        for bus in &mut self.clusters {
            horizon = horizon.min(bus.next_event(now)?);
        }
        horizon = horizon.min(self.backbone.next_event(now)?);
        Some(horizon)
    }

    /// Bulk-advances every segment over the uneventful range (see
    /// [`BusModel::advance`](sim_core::BusModel::advance)); bridge state
    /// is expressed in absolute cycles and needs no per-cycle work.
    pub fn advance(&mut self, from: Cycle, to: Cycle) {
        debug_assert!(!self.in_cycle, "advance between cycles only");
        if to <= from + 1 {
            return;
        }
        for bus in &mut self.clusters {
            bus.advance(from, to);
        }
        self.backbone.advance(from, to);
        self.last_cycle = Some(to - 1);
    }

    /// Starts watching every cluster bus's eligibility filter for
    /// verdict flips (see [`Bus::enable_flip_probe`]); flips stream
    /// through [`BusModel::drain_events`](sim_core::BusModel::drain_events)
    /// with cluster-local cores remapped to their global identities.
    /// Backbone (per-bridge) flips are not forwarded — bridge indices
    /// are not core identities.
    pub fn enable_flip_probe(&mut self) {
        for bus in &mut self.clusters {
            bus.enable_flip_probe();
        }
    }

    /// Resets every segment, bridge and statistic for a fresh run, reusing
    /// the trace buffers (see [`Bus::reset`]). Random sources are *not*
    /// reseeded — replace them for seed control.
    pub fn reset(&mut self) {
        for bus in &mut self.clusters {
            bus.reset();
        }
        self.backbone.reset();
        for bridge in &mut self.bridges {
            bridge.requests.clear();
            bridge.outstanding = None;
            bridge.responses.clear();
        }
        self.in_flight.iter_mut().for_each(|f| *f = false);
        self.trace.clear();
        self.in_cycle = false;
        self.last_cycle = None;
    }
}

/// The fabric speaks the workspace-wide cycle protocol: requests carry
/// global [`CoreId`]s, completions are [`CompletedTransaction`]s, so a
/// fabric drops into any harness written for [`Bus`].
impl sim_core::BusModel for Fabric {
    type Request = BusRequest;
    type Completion = CompletedTransaction;
    type Error = BusError;

    fn begin_cycle(&mut self, now: Cycle) -> Option<CompletedTransaction> {
        Fabric::begin_cycle(self, now)
    }

    fn post(&mut self, req: BusRequest) -> Result<(), BusError> {
        Fabric::post(self, req)
    }

    fn end_cycle(&mut self, now: Cycle) -> Option<CoreId> {
        Fabric::end_cycle(self, now)
    }

    fn owner(&self) -> Option<CoreId> {
        Fabric::owner(self)
    }

    fn trace(&self) -> &GrantTrace {
        Fabric::trace(self)
    }

    fn next_event(&mut self, now: Cycle) -> Option<Cycle> {
        Fabric::next_event(self, now)
    }

    fn advance(&mut self, from: Cycle, to: Cycle) {
        Fabric::advance(self, from, to)
    }

    fn drain_events(&mut self, sink: &mut dyn FnMut(sim_core::ModelEvent)) {
        let cores_per_cluster = self.config.cores_per_cluster();
        for (k, bus) in self.clusters.iter_mut().enumerate() {
            sim_core::BusModel::drain_events(bus, &mut |event| match event {
                sim_core::ModelEvent::CreditFlip { at, core, eligible } => {
                    sink(sim_core::ModelEvent::CreditFlip {
                        at,
                        core: CoreId::from_index(k * cores_per_cluster + core.index()),
                        eligible,
                    })
                }
                #[allow(unreachable_patterns)]
                other => sink(other),
            });
        }
    }
}

impl RequestPort for Fabric {
    fn post(&mut self, req: BusRequest) -> Result<(), BusError> {
        Fabric::post(self, req)
    }

    fn withdraw(&mut self, core: CoreId) -> Option<BusRequest> {
        Fabric::withdraw(self, core)
    }

    fn can_accept(&self, core: CoreId) -> bool {
        core.index() < self.config.n_cores() && !self.is_in_flight(core)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PolicyKind;
    use sim_core::engine::{drive, drive_events, BusModel, Control};

    fn c(i: usize) -> CoreId {
        CoreId::from_index(i)
    }

    fn req(core: usize, dur: u32, at: Cycle) -> BusRequest {
        BusRequest::new(c(core), dur, RequestKind::Synthetic, at).unwrap()
    }

    fn rr_fabric(clusters: usize, cpc: usize, latency: u32, depth: usize) -> Fabric {
        let config = FabricConfig::new(clusters, cpc, 56, latency, depth).unwrap();
        let policies = (0..clusters)
            .map(|_| PolicyKind::RoundRobin.build(cpc, 56))
            .collect();
        Fabric::new(config, policies, PolicyKind::RoundRobin.build(clusters, 56)).unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(FabricConfig::new(0, 4, 56, 2, 2).is_err());
        assert!(FabricConfig::new(4, 0, 56, 2, 2).is_err());
        assert!(FabricConfig::new(8, 16, 56, 2, 2).is_err(), "128 cores");
        assert!(FabricConfig::new(2, 4, 0, 2, 2).is_err());
        assert!(FabricConfig::new(2, 4, 56, 0, 2).is_err());
        assert!(FabricConfig::new(2, 4, 56, 2, 0).is_err());
        let ok = FabricConfig::new(4, 4, 56, 3, 2).unwrap();
        assert_eq!(ok.n_cores(), 16);
        assert_eq!(ok.bridge_latency(), 3);
    }

    #[test]
    fn policy_count_must_match() {
        let config = FabricConfig::new(2, 2, 56, 1, 1).unwrap();
        let policies = vec![PolicyKind::RoundRobin.build(2, 56)];
        assert!(Fabric::new(config, policies, PolicyKind::RoundRobin.build(2, 56)).is_err());
    }

    #[test]
    fn single_transaction_crosses_the_whole_fabric() {
        let mut fabric = rr_fabric(2, 2, 3, 2);
        fabric.post(req(3, 10, 0)).unwrap(); // cluster 1, local core 1
        let mut done = None;
        for now in 0..200u64 {
            if let Some(ct) = fabric.begin_cycle(now) {
                done = Some((now, ct));
            }
            fabric.end_cycle(now);
        }
        // 10 (cluster) + 3 (bridge) + 10 (backbone) + 3 (bridge) = 26.
        let (at, ct) = done.expect("completes");
        assert_eq!(at, 26);
        assert_eq!(ct.core, c(3));
        assert_eq!(ct.duration, 10);
        assert_eq!(fabric.trace().slots(c(3)), 1);
        assert_eq!(fabric.trace().busy_cycles(c(3)), 10);
        assert_eq!(fabric.cluster_bus(1).trace().busy_cycles(c(1)), 10);
        assert_eq!(fabric.backbone().trace().busy_cycles(c(1)), 10);
        assert!(!fabric.is_in_flight(c(3)));
    }

    #[test]
    fn post_validation_and_in_flight_gating() {
        let mut fabric = rr_fabric(2, 2, 1, 1);
        assert!(matches!(
            fabric.post(req(4, 5, 0)),
            Err(BusError::UnknownCore(_))
        ));
        assert!(matches!(
            fabric.post(req(0, 57, 0)),
            Err(BusError::DurationOutOfRange { .. })
        ));
        fabric.post(req(0, 5, 0)).unwrap();
        assert!(matches!(
            fabric.post(req(0, 5, 0)),
            Err(BusError::AlreadyPending(_))
        ));
        assert!(!RequestPort::can_accept(&fabric, c(0)));
        assert!(RequestPort::can_accept(&fabric, c(1)));
        // In flight until delivery, even while crossing bridges.
        let done_at = 5 + 1 + 5 + 1;
        for now in 0..done_at {
            fabric.tick(now);
            assert!(fabric.is_in_flight(c(0)), "cycle {now}");
            assert!(matches!(
                fabric.post(req(0, 5, now)),
                Err(BusError::AlreadyPending(_))
            ));
        }
        let out = fabric.tick(done_at);
        assert_eq!(out.completed.map(|ct| ct.core), Some(c(0)));
        assert!(RequestPort::can_accept(&fabric, c(0)));
    }

    #[test]
    fn withdraw_only_before_cluster_grant() {
        let mut fabric = rr_fabric(2, 2, 1, 1);
        fabric.post(req(0, 5, 0)).unwrap();
        // Not yet granted (no cycle ran): withdrawable.
        let w = fabric.withdraw(c(0)).expect("still pending");
        assert_eq!(w.core(), c(0));
        assert!(!fabric.is_in_flight(c(0)));
        // Granted on the cluster bus: no longer withdrawable.
        fabric.post(req(0, 5, 0)).unwrap();
        fabric.tick(0);
        assert!(fabric.withdraw(c(0)).is_none());
        assert!(fabric.is_in_flight(c(0)));
    }

    #[test]
    fn bounded_request_queue_backpressures_the_cluster_bus() {
        // Depth 1, long backbone occupancy from cluster 1 keeps cluster
        // 0's bridge queue full; its bus must stop granting until the
        // queue drains.
        let mut fabric = rr_fabric(2, 2, 1, 1);
        let horizon = 2_000u64;
        for now in 0..horizon {
            fabric.begin_cycle(now);
            for core in 0..4 {
                if RequestPort::can_accept(&fabric, c(core)) {
                    fabric.post(req(core, 56, now)).unwrap();
                }
            }
            fabric.end_cycle(now);
        }
        for k in 0..2 {
            assert!(
                fabric.bridges[k].requests.len() <= 1,
                "queue bounded by depth"
            );
        }
        // Both clusters keep making progress despite the backpressure.
        assert!(fabric.trace().slots(c(0)) + fabric.trace().slots(c(1)) > 5);
        assert!(fabric.trace().slots(c(2)) + fabric.trace().slots(c(3)) > 5);
        // The backbone carried roughly the whole horizon.
        assert!(fabric.idle_cycles() < horizon / 4);
    }

    /// A filter that permanently vetoes one contender (to test per-segment
    /// filter composition; the real credit filters are exercised by the
    /// workspace-level fabric tests, which can depend on the `cba` crate).
    #[derive(Debug)]
    struct Veto(CoreId);

    impl EligibilityFilter for Veto {
        fn name(&self) -> &'static str {
            "veto"
        }
        fn is_eligible(&self, core: CoreId, _now: Cycle) -> bool {
            core != self.0
        }
    }

    #[test]
    fn segment_filters_apply_independently() {
        // Backbone filter vetoes bridge 1: cluster 1's cores keep winning
        // their own bus but never reach memory; cluster 0 is unaffected.
        // A cluster-0 filter vetoing local core 1 (global core 1) starves
        // exactly that core.
        let mut fabric = rr_fabric(2, 2, 1, 1);
        fabric.set_backbone_filter(Box::new(Veto(c(1)))); // bridge 1
        fabric.set_cluster_filter(0, Box::new(Veto(c(1)))); // local core 1
        for now in 0..3_000u64 {
            fabric.begin_cycle(now);
            for core in 0..4 {
                if RequestPort::can_accept(&fabric, c(core)) {
                    fabric.post(req(core, 28, now)).unwrap();
                }
            }
            fabric.end_cycle(now);
        }
        assert!(fabric.trace().slots(c(0)) > 10, "cluster 0 flows");
        assert_eq!(fabric.trace().slots(c(1)), 0, "vetoed on its cluster");
        assert_eq!(
            fabric.trace().slots(c(2)) + fabric.trace().slots(c(3)),
            0,
            "bridge 1 vetoed on the backbone"
        );
        // Cluster 1's bus still granted locally (its bridge queue filled).
        assert!(fabric.cluster_bus(1).trace().total_slots() >= 1);
    }

    #[test]
    fn next_event_matches_the_pipeline_stages() {
        let mut fabric = rr_fabric(2, 2, 3, 2);
        fabric.post(req(0, 10, 0)).unwrap();
        fabric.tick(0); // cluster grant: busy [0, 10)
        assert_eq!(fabric.next_event(0), Some(10));
        for now in 1..=10u64 {
            fabric.tick(now);
        }
        // Crossing the bridge: ready at 10 + 3 = 13.
        assert_eq!(fabric.next_event(10), Some(13));
        for now in 11..=13u64 {
            fabric.tick(now);
        }
        // Backbone granted at 13: busy [13, 23).
        assert_eq!(fabric.next_event(13), Some(23));
        for now in 14..=23u64 {
            fabric.tick(now);
        }
        // Response crossing: deliverable at 23 + 3 = 26.
        assert_eq!(fabric.next_event(23), Some(26));
        let mut done = None;
        for now in 24..=26u64 {
            if let Some(ct) = fabric.begin_cycle(now) {
                done = Some(now);
                assert_eq!(ct.core, c(0));
            }
            fabric.end_cycle(now);
        }
        assert_eq!(done, Some(26));
        // Idle and empty: no fabric-side event at all.
        assert_eq!(fabric.next_event(26), Some(Cycle::MAX));
    }

    /// A deterministic mixed workload closure shared by the naive/fast
    /// equivalence test: staggered periodic posters of mixed durations,
    /// sleeping until the next issue boundary so the fast path really
    /// skips.
    fn mixed_traffic() -> impl FnMut(&mut Fabric, Cycle, Option<&CompletedTransaction>) -> Control {
        move |fabric, now, _completed| {
            let n = fabric.config().n_cores();
            let mut until = Cycle::MAX;
            for core in 0..n {
                let period = 40 + 13 * core as u64;
                let offset = (7 * core as u64) % period;
                if now % period == offset && RequestPort::can_accept(fabric, c(core)) {
                    let dur = [5u32, 28, 56][core % 3];
                    RequestPort::post(fabric, req(core, dur, now)).unwrap();
                }
                // The next issue boundary of this core after `now`.
                let next = now + period - (now + period - offset) % period;
                until = until.min(next);
            }
            Control::Sleep(until)
        }
    }

    #[test]
    fn drive_events_matches_drive_bit_for_bit() {
        let run = |fast: bool| -> (Vec<u64>, Vec<u64>, u64, u64) {
            let mut fabric = rr_fabric(2, 3, 2, 2);
            let outcome = if fast {
                drive_events(&mut fabric, 20_000, mixed_traffic())
            } else {
                drive(&mut fabric, 20_000, mixed_traffic())
            };
            assert_eq!(outcome.cycles, 20_000);
            let slots = (0..6).map(|i| fabric.trace().slots(c(i))).collect();
            let busy = (0..6).map(|i| fabric.trace().busy_cycles(c(i))).collect();
            (slots, busy, fabric.idle_cycles(), fabric.total_cycles())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn reset_restores_a_fresh_fabric() {
        let mut fabric = rr_fabric(2, 2, 2, 2);
        fabric.post(req(0, 10, 0)).unwrap();
        fabric.post(req(2, 56, 0)).unwrap();
        for now in 0..15u64 {
            fabric.tick(now);
        }
        fabric.reset();
        assert_eq!(fabric.trace().total_slots(), 0);
        assert_eq!(fabric.total_cycles(), 0);
        assert!(!fabric.is_in_flight(c(0)));
        assert!(!fabric.is_in_flight(c(2)));
        // A fresh run from cycle 0 behaves like a new fabric.
        fabric.post(req(3, 10, 0)).unwrap();
        let mut done = None;
        for now in 0..100u64 {
            if fabric.begin_cycle(now).is_some() {
                done = Some(now);
            }
            fabric.end_cycle(now);
        }
        assert_eq!(done, Some(10 + 2 + 10 + 2));
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn non_monotonic_cycles_panic() {
        let mut fabric = rr_fabric(1, 1, 1, 1);
        fabric.tick(5);
        fabric.tick(5);
    }
}
