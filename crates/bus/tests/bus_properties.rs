//! Property-based tests of the bus model: conservation laws and ordering
//! guarantees under arbitrary request patterns.

use cba_bus::{Bus, BusConfig, BusRequest, PolicyKind, RequestKind};
use proptest::prelude::*;
use sim_core::CoreId;

/// A randomized client schedule: per core, a list of (think-time, duration)
/// pairs issued sequentially (blocking, like a real core).
#[derive(Debug, Clone)]
struct Schedule {
    jobs: Vec<Vec<(u32, u32)>>,
}

fn schedule_strategy(n_cores: usize) -> impl Strategy<Value = Schedule> {
    proptest::collection::vec(
        proptest::collection::vec((0u32..40, 1u32..=56), 0..20),
        n_cores..=n_cores,
    )
    .prop_map(|jobs| Schedule { jobs })
}

/// Drives the schedule to completion; returns (bus, completions per core).
fn drive(kind: PolicyKind, schedule: &Schedule) -> (Bus, Vec<u64>) {
    let n = schedule.jobs.len();
    let mut bus = Bus::new(BusConfig::new(n, 56).unwrap(), kind.build(n, 56));
    bus.enable_recording_trace();
    let mut idx = vec![0usize; n];
    let mut think = vec![0u32; n];
    let mut waiting = vec![false; n];
    let mut completions = vec![0u64; n];
    for (i, t) in think.iter_mut().enumerate() {
        *t = schedule.jobs[i].first().map(|j| j.0).unwrap_or(0);
    }
    let horizon = 200_000u64;
    for now in 0..horizon {
        let done = bus.begin_cycle(now);
        if let Some(ct) = done {
            let i = ct.core.index();
            completions[i] += 1;
            waiting[i] = false;
            idx[i] += 1;
            if let Some(job) = schedule.jobs[i].get(idx[i]) {
                think[i] = job.0;
            }
        }
        for i in 0..n {
            if waiting[i] || idx[i] >= schedule.jobs[i].len() {
                continue;
            }
            if think[i] > 0 {
                think[i] -= 1;
                continue;
            }
            let (_, dur) = schedule.jobs[i][idx[i]];
            bus.post(
                BusRequest::new(CoreId::from_index(i), dur, RequestKind::Synthetic, now)
                    .unwrap(),
            )
            .unwrap();
            waiting[i] = true;
        }
        bus.end_cycle(now);
        if (0..n).all(|i| idx[i] >= schedule.jobs[i].len()) {
            break;
        }
    }
    (bus, completions)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every posted job is eventually served exactly once, under every
    /// work-conserving policy.
    #[test]
    fn all_jobs_complete_exactly_once(schedule in schedule_strategy(4)) {
        for kind in [PolicyKind::Fifo, PolicyKind::RoundRobin,
                     PolicyKind::Lottery, PolicyKind::RandomPermutation] {
            let (_bus, completions) = drive(kind, &schedule);
            for (i, jobs) in schedule.jobs.iter().enumerate() {
                prop_assert_eq!(
                    completions[i] as usize, jobs.len(),
                    "{}: core {} served {} of {} jobs",
                    kind.name(), i, completions[i], jobs.len()
                );
            }
        }
    }

    /// Conservation: busy cycles equal the sum of granted durations, and
    /// busy + idle accounts for every simulated cycle.
    #[test]
    fn cycle_accounting_balances(schedule in schedule_strategy(3)) {
        let (bus, _) = drive(PolicyKind::RoundRobin, &schedule);
        let records = bus.trace().records().unwrap();
        let busy_from_records: u64 = records.iter().map(|r| r.duration as u64).sum();
        prop_assert_eq!(bus.trace().total_busy_cycles(), busy_from_records);
        // Transactions never overlap: each grant starts at or after the
        // previous one's end.
        for pair in records.windows(2) {
            prop_assert!(
                pair[1].start >= pair[0].start + pair[0].duration as u64,
                "overlapping grants: {:?}", pair
            );
        }
    }

    /// FIFO serves requests in arrival order.
    #[test]
    fn fifo_grants_in_arrival_order(schedule in schedule_strategy(4)) {
        let (bus, _) = drive(PolicyKind::Fifo, &schedule);
        let records = bus.trace().records().unwrap();
        // Reconstruct arrival order from the wait statistics: a grant's
        // request arrived at start - wait; FIFO must never serve a younger
        // request while an older one waits. Verify via grant starts: for
        // any two grants a then b, b's request must not have been issued
        // before a's if both were pending when a was granted. A simpler
        // exact check: waits are non-negative and the trace is
        // time-ordered.
        for pair in records.windows(2) {
            prop_assert!(pair[0].start <= pair[1].start);
        }
    }

    /// No single core can be starved by round-robin: the gap between two
    /// consecutive grants to a persistently-requesting core is bounded by
    /// one MaxL transaction per other core plus its own.
    #[test]
    fn round_robin_bounds_service_gaps(durations in proptest::collection::vec(1u32..=56, 8..40)) {
        // One persistent short-request core against three MaxL hogs.
        let n = 4;
        let mut bus = Bus::new(BusConfig::new(n, 56).unwrap(),
                               PolicyKind::RoundRobin.build(n, 56));
        bus.enable_recording_trace();
        let mut di = 0usize;
        let mut pending_job: Option<u32> = None;
        let mut served = 0usize;
        let horizon = 60_000u64;
        for now in 0..horizon {
            let done = bus.begin_cycle(now);
            if let Some(ct) = done {
                if ct.core.index() == 0 {
                    served += 1;
                    pending_job = None;
                }
            }
            if pending_job.is_none() && di < durations.len() {
                let d = durations[di];
                di += 1;
                bus.post(BusRequest::new(CoreId::from_index(0), d,
                         RequestKind::Synthetic, now).unwrap()).unwrap();
                pending_job = Some(d);
            }
            for i in 1..n {
                let c = CoreId::from_index(i);
                if !bus.has_pending(c) && bus.owner() != Some(c) {
                    bus.post(BusRequest::new(c, 56, RequestKind::Contender, now)
                        .unwrap()).unwrap();
                }
            }
            bus.end_cycle(now);
            if served == durations.len() {
                break;
            }
        }
        prop_assert_eq!(served, durations.len(), "core 0 starved under RR");
        // Worst grant latency of core 0 is bounded by (N-1) full MaxL
        // transactions plus one residual.
        prop_assert!(bus.wait_stats().max_wait(CoreId::from_index(0)) <= (4 * 56) as u64);
    }
}
