//! Property-based tests of the bus model: conservation laws and ordering
//! guarantees under randomized request patterns.
//!
//! The workspace builds offline, so instead of `proptest` these properties
//! are exercised over deterministic families of random inputs drawn from
//! [`SimRng`]: every case is reproducible from its seed, and a failure
//! message names the seed that produced it.

use cba_bus::{drive, Bus, BusConfig, BusRequest, Control, PolicyKind, RequestKind};
use sim_core::rng::SimRng;
use sim_core::CoreId;

/// A randomized client schedule: per core, a list of (think-time, duration)
/// pairs issued sequentially (blocking, like a real core).
#[derive(Debug, Clone)]
struct Schedule {
    jobs: Vec<Vec<(u32, u32)>>,
}

fn random_schedule(n_cores: usize, seed: u64) -> Schedule {
    let mut rng = SimRng::seed_from(seed);
    let jobs = (0..n_cores)
        .map(|_| {
            let n_jobs = rng.gen_range_usize(0..20);
            (0..n_jobs)
                .map(|_| {
                    (
                        rng.gen_range_u64(0..40) as u32,
                        rng.gen_range_u64(1..57) as u32,
                    )
                })
                .collect()
        })
        .collect();
    Schedule { jobs }
}

/// Drives the schedule to completion through the shared engine; returns
/// (bus, completions per core).
fn run_schedule(kind: PolicyKind, schedule: &Schedule) -> (Bus, Vec<u64>) {
    let n = schedule.jobs.len();
    let mut bus = Bus::new(BusConfig::new(n, 56).unwrap(), kind.build(n, 56));
    bus.enable_recording_trace();
    let mut idx = vec![0usize; n];
    let mut think = vec![0u32; n];
    let mut waiting = vec![false; n];
    let mut completions = vec![0u64; n];
    for (i, t) in think.iter_mut().enumerate() {
        *t = schedule.jobs[i].first().map(|j| j.0).unwrap_or(0);
    }
    drive(&mut bus, 200_000, |bus, now, done| {
        if let Some(ct) = done {
            let i = ct.core.index();
            completions[i] += 1;
            waiting[i] = false;
            idx[i] += 1;
            if let Some(job) = schedule.jobs[i].get(idx[i]) {
                think[i] = job.0;
            }
        }
        for i in 0..n {
            if waiting[i] || idx[i] >= schedule.jobs[i].len() {
                continue;
            }
            if think[i] > 0 {
                think[i] -= 1;
                continue;
            }
            let (_, dur) = schedule.jobs[i][idx[i]];
            bus.post(
                BusRequest::new(CoreId::from_index(i), dur, RequestKind::Synthetic, now).unwrap(),
            )
            .unwrap();
            waiting[i] = true;
        }
        if (0..n).all(|i| idx[i] >= schedule.jobs[i].len()) {
            Control::Stop
        } else {
            Control::Continue
        }
    });
    (bus, completions)
}

/// Every posted job is eventually served exactly once, under every
/// work-conserving policy.
#[test]
fn all_jobs_complete_exactly_once() {
    for seed in 0..48u64 {
        let schedule = random_schedule(4, seed);
        for kind in [
            PolicyKind::Fifo,
            PolicyKind::RoundRobin,
            PolicyKind::Lottery,
            PolicyKind::RandomPermutation,
        ] {
            let (_bus, completions) = run_schedule(kind, &schedule);
            for (i, jobs) in schedule.jobs.iter().enumerate() {
                assert_eq!(
                    completions[i] as usize,
                    jobs.len(),
                    "seed {seed}, {}: core {i} served {} of {} jobs",
                    kind.name(),
                    completions[i],
                    jobs.len()
                );
            }
        }
    }
}

/// Conservation: busy cycles equal the sum of granted durations, and
/// transactions never overlap on the bus.
#[test]
fn cycle_accounting_balances() {
    for seed in 100..148u64 {
        let schedule = random_schedule(3, seed);
        let (bus, _) = run_schedule(PolicyKind::RoundRobin, &schedule);
        let records = bus.trace().records().unwrap();
        let busy_from_records: u64 = records.iter().map(|r| r.duration as u64).sum();
        assert_eq!(
            bus.trace().total_busy_cycles(),
            busy_from_records,
            "seed {seed}"
        );
        // Transactions never overlap: each grant starts at or after the
        // previous one's end.
        for pair in records.windows(2) {
            assert!(
                pair[1].start >= pair[0].start + pair[0].duration as u64,
                "seed {seed}: overlapping grants: {pair:?}"
            );
        }
    }
}

/// FIFO produces a time-ordered trace with non-negative waits.
#[test]
fn fifo_grants_in_arrival_order() {
    for seed in 200..248u64 {
        let schedule = random_schedule(4, seed);
        let (bus, _) = run_schedule(PolicyKind::Fifo, &schedule);
        let records = bus.trace().records().unwrap();
        for pair in records.windows(2) {
            assert!(pair[0].start <= pair[1].start, "seed {seed}");
        }
    }
}

/// No single core can be starved by round-robin: the gap between two
/// consecutive grants to a persistently-requesting core is bounded by
/// one MaxL transaction per other core plus its own.
#[test]
fn round_robin_bounds_service_gaps() {
    for seed in 300..332u64 {
        let mut rng = SimRng::seed_from(seed);
        let n_jobs = rng.gen_range_usize(8..40);
        let durations: Vec<u32> = (0..n_jobs)
            .map(|_| rng.gen_range_u64(1..57) as u32)
            .collect();

        // One persistent short-request core against three MaxL hogs.
        let n = 4;
        let mut bus = Bus::new(
            BusConfig::new(n, 56).unwrap(),
            PolicyKind::RoundRobin.build(n, 56),
        );
        bus.enable_recording_trace();
        let mut di = 0usize;
        let mut pending_job: Option<u32> = None;
        let mut served = 0usize;
        drive(&mut bus, 60_000, |bus, now, done| {
            if let Some(ct) = done {
                if ct.core.index() == 0 {
                    served += 1;
                    pending_job = None;
                }
            }
            if pending_job.is_none() && di < durations.len() {
                let d = durations[di];
                di += 1;
                bus.post(
                    BusRequest::new(CoreId::from_index(0), d, RequestKind::Synthetic, now).unwrap(),
                )
                .unwrap();
                pending_job = Some(d);
            }
            for i in 1..n {
                let c = CoreId::from_index(i);
                if !bus.has_pending(c) && bus.owner() != Some(c) {
                    bus.post(BusRequest::new(c, 56, RequestKind::Contender, now).unwrap())
                        .unwrap();
                }
            }
            if served == durations.len() {
                Control::Stop
            } else {
                Control::Continue
            }
        });
        assert_eq!(
            served,
            durations.len(),
            "seed {seed}: core 0 starved under RR"
        );
        // Worst grant latency of core 0 is bounded by (N-1) full MaxL
        // transactions plus one residual.
        assert!(bus.wait_stats().max_wait(CoreId::from_index(0)) <= (4 * 56) as u64);
    }
}
